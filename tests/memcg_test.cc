#include "memcg/mem_cgroup.h"

#include <gtest/gtest.h>

namespace escra::memcg {
namespace {

TEST(MemCgroupTest, ChargeWithinLimitSucceeds) {
  MemCgroup cg(1, 100 * kMiB);
  EXPECT_EQ(cg.try_charge(60 * kMiB), ChargeResult::kOk);
  EXPECT_EQ(cg.usage(), 60 * kMiB);
  EXPECT_EQ(cg.slack(), 40 * kMiB);
}

TEST(MemCgroupTest, ChargeToExactLimitSucceeds) {
  MemCgroup cg(1, 100 * kMiB);
  EXPECT_EQ(cg.try_charge(100 * kMiB), ChargeResult::kOk);
  EXPECT_EQ(cg.slack(), 0);
}

TEST(MemCgroupTest, OverflowWithoutHookIsOom) {
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(90 * kMiB);
  EXPECT_EQ(cg.try_charge(20 * kMiB), ChargeResult::kOom);
  EXPECT_EQ(cg.usage(), 90 * kMiB) << "failed charge must not be applied";
  EXPECT_EQ(cg.oom_kills(), 1u);
}

TEST(MemCgroupTest, HookSeesChargeAndShortfall) {
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(90 * kMiB);
  Bytes seen_charge = 0, seen_shortfall = 0;
  cg.set_oom_hook([&](MemCgroup&, Bytes charge, Bytes shortfall) {
    seen_charge = charge;
    seen_shortfall = shortfall;
    return false;
  });
  cg.try_charge(30 * kMiB);
  EXPECT_EQ(seen_charge, 30 * kMiB);
  EXPECT_EQ(seen_shortfall, 20 * kMiB);
}

TEST(MemCgroupTest, RescueRaisesLimitAndRetries) {
  // The Escra path: hook raises the limit, charge retries, container lives.
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(90 * kMiB);
  cg.set_oom_hook([](MemCgroup& self, Bytes, Bytes shortfall) {
    self.set_limit(self.limit() + shortfall + 16 * kMiB);
    return true;
  });
  EXPECT_EQ(cg.try_charge(30 * kMiB), ChargeResult::kRescued);
  EXPECT_EQ(cg.usage(), 120 * kMiB);
  EXPECT_EQ(cg.oom_rescues(), 1u);
  EXPECT_EQ(cg.oom_kills(), 0u);
}

TEST(MemCgroupTest, LyingHookStillOoms) {
  // A hook that claims success without raising the limit must not corrupt
  // accounting: the charge fails and the OOM killer proceeds.
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(90 * kMiB);
  cg.set_oom_hook([](MemCgroup&, Bytes, Bytes) { return true; });
  EXPECT_EQ(cg.try_charge(30 * kMiB), ChargeResult::kOom);
  EXPECT_EQ(cg.usage(), 90 * kMiB);
  EXPECT_EQ(cg.oom_kills(), 1u);
  EXPECT_EQ(cg.oom_rescues(), 0u);
}

TEST(MemCgroupTest, PartialRescueStillOoms) {
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(90 * kMiB);
  cg.set_oom_hook([](MemCgroup& self, Bytes, Bytes shortfall) {
    self.set_limit(self.limit() + shortfall / 2);  // not enough
    return true;
  });
  EXPECT_EQ(cg.try_charge(40 * kMiB), ChargeResult::kOom);
}

TEST(MemCgroupTest, UnchargeReleases) {
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(60 * kMiB);
  cg.uncharge(20 * kMiB);
  EXPECT_EQ(cg.usage(), 40 * kMiB);
  cg.uncharge(100 * kMiB);  // clamped
  EXPECT_EQ(cg.usage(), 0);
}

TEST(MemCgroupTest, LoweringLimitBelowUsageIsAllowed) {
  // Linux allows this (reclaim pressure); the next charge then OOMs.
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(80 * kMiB);
  cg.set_limit(50 * kMiB);
  EXPECT_EQ(cg.usage(), 80 * kMiB);
  EXPECT_EQ(cg.slack(), -30 * kMiB);
  EXPECT_EQ(cg.try_charge(kPageSize), ChargeResult::kOom);
}

TEST(MemCgroupTest, ForceChargeIgnoresLimit) {
  MemCgroup cg(1, 10 * kMiB);
  cg.force_charge(50 * kMiB);
  EXPECT_EQ(cg.usage(), 50 * kMiB);
  EXPECT_EQ(cg.oom_kills(), 0u);
}

TEST(MemCgroupTest, ResetUsageZeroes) {
  MemCgroup cg(1, 100 * kMiB);
  cg.try_charge(70 * kMiB);
  cg.reset_usage();
  EXPECT_EQ(cg.usage(), 0);
  EXPECT_EQ(cg.limit(), 100 * kMiB) << "limit survives a kill";
}

TEST(MemCgroupTest, ZeroChargeAlwaysOk) {
  MemCgroup cg(1, 0);
  EXPECT_EQ(cg.try_charge(0), ChargeResult::kOk);
}

TEST(MemCgroupTest, NegativeArgumentsThrow) {
  MemCgroup cg(1, kMiB);
  EXPECT_THROW(cg.try_charge(-1), std::invalid_argument);
  EXPECT_THROW(cg.uncharge(-1), std::invalid_argument);
  EXPECT_THROW(cg.set_limit(-1), std::invalid_argument);
  EXPECT_THROW(cg.force_charge(-1), std::invalid_argument);
  EXPECT_THROW(MemCgroup(1, -5), std::invalid_argument);
}

TEST(MemCgroupTest, ChargeCountTracksAttempts) {
  MemCgroup cg(1, kMiB);
  cg.try_charge(100);
  cg.try_charge(2 * kMiB);  // fails
  EXPECT_EQ(cg.charge_count(), 2u);
}

TEST(MemCgroupTest, RepeatedRescuesCount) {
  MemCgroup cg(1, kMiB);
  cg.set_oom_hook([](MemCgroup& self, Bytes charge, Bytes) {
    self.set_limit(self.usage() + charge);
    return true;
  });
  ASSERT_EQ(cg.try_charge(kMiB), ChargeResult::kOk);  // exact fit
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(cg.try_charge(kMiB), ChargeResult::kRescued);
  }
  EXPECT_EQ(cg.oom_rescues(), 10u);
  EXPECT_EQ(cg.usage(), 11 * kMiB);
}

}  // namespace
}  // namespace escra::memcg
