// The control-plane reliability layer under injected faults: sequenced
// idempotent limit applies, retransmit-until-ack, heartbeat liveness with
// quarantine + reclaim, agent lease fail-static, Controller crash/resync,
// and deterministic replay of FaultInjector schedules.
#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "obs/observer.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

cluster::Container& make_container(cluster::Cluster& k8s,
                                   const std::string& name,
                                   double parallelism = 4.0) {
  cluster::ContainerSpec s;
  s.name = name;
  s.base_memory = 64 * kMiB;
  s.max_parallelism = parallelism;
  return k8s.create_container(std::move(s), 0.5, 128 * kMiB);
}

// --- Agent: sequenced applies and crash/restart -------------------------

TEST(FaultTest, SequencedApplyIsIdempotent) {
  sim::Simulation sim;
  cluster::Cluster k8s(sim);
  cluster::Node& node = k8s.add_node({});
  cluster::Container& c = make_container(k8s, "a");
  core::Agent agent(node);
  agent.manage(c);

  EXPECT_EQ(agent.apply_cpu_limit(c.id(), 2.0, 5), core::Agent::Apply::kApplied);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.0);

  // The same sequence again, and an older one: both discarded, limit intact.
  EXPECT_EQ(agent.apply_cpu_limit(c.id(), 3.0, 5), core::Agent::Apply::kStale);
  EXPECT_EQ(agent.apply_cpu_limit(c.id(), 3.0, 4), core::Agent::Apply::kStale);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.0);

  // A newer sequence supersedes.
  EXPECT_EQ(agent.apply_cpu_limit(c.id(), 3.0, 6), core::Agent::Apply::kApplied);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 3.0);

  // Sequences are tracked per resource: memory starts fresh.
  EXPECT_EQ(agent.apply_mem_limit(c.id(), 256 * kMiB, 5),
            core::Agent::Apply::kApplied);
  EXPECT_EQ(c.mem_cgroup().limit(), 256 * kMiB);
}

TEST(FaultTest, AgentCrashLosesSoftStateButCgroupsPersist) {
  sim::Simulation sim;
  cluster::Cluster k8s(sim);
  cluster::Node& node = k8s.add_node({});
  cluster::Container& c = make_container(k8s, "a");
  core::Agent agent(node);
  agent.manage(c);
  ASSERT_EQ(agent.apply_cpu_limit(c.id(), 2.0, 9), core::Agent::Apply::kApplied);
  const std::uint64_t inc_before = agent.incarnation();

  agent.crash();
  EXPECT_TRUE(agent.crashed());
  // The node fails static: the cgroup keeps the last applied limit...
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.0);
  // ...and RPCs to the dead process get no response at all.
  EXPECT_EQ(agent.apply_cpu_limit(c.id(), 4.0, 10),
            core::Agent::Apply::kRejected);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.0);

  agent.restart();
  EXPECT_FALSE(agent.crashed());
  EXPECT_GT(agent.incarnation(), inc_before);
  // The sequence table died with the process: an "old" sequence applies
  // again (the Controller resync makes this safe by pushing fresh state).
  EXPECT_EQ(agent.apply_cpu_limit(c.id(), 1.5, 1), core::Agent::Apply::kApplied);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 1.5);
}

// --- Controller: retransmit until acked ---------------------------------

TEST(FaultTest, RetransmitsUntilAckThenDrains) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  cluster::Node& node = k8s.add_node({});
  core::EscraConfig config;
  core::DistributedContainer app(16.0, 8 * kGiB);
  core::ResourceAllocator alloc(config, app);
  core::Controller controller(sim, net, config, alloc);

  cluster::Container& c = make_container(k8s, "a");
  controller.register_container(c, node, 0.5, kGiB);
  // Saturate so every period throttles and the allocator keeps granting.
  c.submit(seconds(30), 0, nullptr);

  // Blackhole the RPC channel: updates are issued but never delivered.
  net.set_fault_rng(sim::Rng(3));
  net.set_drop_rate(net::Channel::kControlRpc, 1.0 - 1e-12);
  sim.run_until(seconds(1));
  EXPECT_GT(controller.limit_updates_sent(), 0u);
  EXPECT_GT(controller.retransmits(), 0u);
  EXPECT_GT(controller.pending_updates(), 0u);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 0.5)
      << "nothing applied through a blackholed channel";

  // Heal the channel: the armed retransmit timers deliver the newest
  // intended limits and the pending set drains.
  net.set_drop_rate(net::Channel::kControlRpc, 0.0);
  sim.run_until(seconds(2));
  EXPECT_EQ(controller.pending_updates(), 0u);
  EXPECT_GT(c.cpu_cgroup().limit_cores(), 0.5);
}

// --- liveness: heartbeats, quarantine, reclaim, rejoin ------------------

struct LivenessRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  core::EscraSystem escra{sim, net, k8s, 16.0, 8 * kGiB};
  std::vector<cluster::Container*> containers;

  LivenessRig() {
    k8s.add_node({});
    k8s.add_node({});
    for (int i = 0; i < 4; ++i) {
      containers.push_back(&make_container(k8s, "c" + std::to_string(i)));
    }
    escra.manage(containers);
    escra.start();
  }

  std::vector<cluster::Container*> on_node(cluster::NodeId id) const {
    std::vector<cluster::Container*> out;
    for (cluster::Container* c : containers) {
      const cluster::Node* n = k8s.node_of(c->id());
      if (n != nullptr && n->id() == id) out.push_back(c);
    }
    return out;
  }
};

TEST(FaultTest, PartitionDeclaresNodeDeadQuarantinesThenReclaims) {
  LivenessRig rig;
  const auto victims = rig.on_node(0);
  ASSERT_FALSE(victims.empty());
  rig.sim.run_until(seconds(1));
  EXPECT_FALSE(rig.escra.controller().node_dead(0));

  rig.net.partition(0, net::kControllerEndpoint);
  // liveness_timeout (350 ms) of silence: declared dead, pool share still
  // quarantined (containers stay registered through the grace window).
  rig.sim.run_until(seconds(1) + milliseconds(600));
  EXPECT_TRUE(rig.escra.controller().node_dead(0));
  for (const cluster::Container* c : victims) {
    EXPECT_TRUE(rig.escra.controller().is_registered(c->id()));
  }

  // quarantine_grace (2 s) later the dead node's share is reclaimed.
  const double unallocated_before = rig.escra.app().cpu_unallocated();
  rig.sim.run_until(seconds(4));
  EXPECT_TRUE(rig.escra.controller().node_dead(0));
  for (const cluster::Container* c : victims) {
    EXPECT_FALSE(rig.escra.controller().is_registered(c->id()))
        << "quarantine expired: the dead node's containers leave the pool";
    EXPECT_GT(c->cpu_cgroup().limit_cores(), 0.0)
        << "fail static: the node-local cgroup limit persists";
  }
  EXPECT_GT(rig.escra.app().cpu_unallocated(), unallocated_before);

  // Heal: heartbeats resume, the node is declared alive, and a resync
  // re-adopts its containers into the pool.
  rig.net.heal(0, net::kControllerEndpoint);
  rig.sim.run_until(seconds(5));
  EXPECT_FALSE(rig.escra.controller().node_dead(0));
  for (const cluster::Container* c : victims) {
    EXPECT_TRUE(rig.escra.controller().is_registered(c->id()));
  }
  EXPECT_GT(rig.escra.controller().resyncs(), 0u);
  EXPECT_LE(rig.escra.app().cpu_allocated(), 16.0);
}

TEST(FaultTest, AgentLeaseExpiryEntersFailStaticUntilContact) {
  LivenessRig rig;
  rig.sim.run_until(seconds(1));
  core::Agent* agent = rig.escra.controller().agent_at(0);
  ASSERT_NE(agent, nullptr);
  EXPECT_FALSE(agent->fail_static());

  rig.net.partition(0, net::kControllerEndpoint);
  // agent_lease (500 ms) of Controller silence: fail-static.
  rig.sim.run_until(seconds(2));
  EXPECT_TRUE(agent->fail_static());

  rig.net.heal(0, net::kControllerEndpoint);
  // The next heartbeat ack (or any delivered RPC) renews the lease.
  rig.sim.run_until(seconds(3));
  EXPECT_FALSE(agent->fail_static());
}

TEST(FaultTest, ControllerCrashFailsStaticAndResyncRebuilds) {
  LivenessRig rig;
  rig.sim.run_until(seconds(1));
  const std::size_t registered = rig.escra.controller().registered_count();
  ASSERT_EQ(registered, 4u);
  std::vector<double> limits_at_crash;
  for (const cluster::Container* c : rig.containers) {
    limits_at_crash.push_back(c->cpu_cgroup().limit_cores());
  }

  rig.escra.crash();
  EXPECT_TRUE(rig.escra.crashed());
  EXPECT_EQ(rig.escra.controller().registered_count(), 0u);
  rig.sim.run_until(seconds(3));
  // Fail static: cgroup limits survive the Controller untouched, and the
  // orphaned Agents notice the silence.
  for (std::size_t i = 0; i < rig.containers.size(); ++i) {
    EXPECT_DOUBLE_EQ(rig.containers[i]->cpu_cgroup().limit_cores(),
                     limits_at_crash[i]);
  }
  core::Agent* agent = rig.escra.controller().agent_at(0);
  ASSERT_NE(agent, nullptr);
  EXPECT_TRUE(agent->fail_static());

  rig.escra.restart();
  rig.sim.run_until(seconds(4));
  EXPECT_FALSE(rig.escra.crashed());
  EXPECT_EQ(rig.escra.controller().registered_count(), 4u)
      << "resync readopted every agent's snapshot";
  EXPECT_GT(rig.escra.controller().resyncs(), 0u);
  EXPECT_FALSE(agent->fail_static());
  EXPECT_LE(rig.escra.app().cpu_allocated(), 16.0);
  EXPECT_LE(rig.escra.app().mem_allocated(), rig.escra.app().mem_limit());
}

// --- FaultInjector ------------------------------------------------------

struct ReplayFingerprint {
  std::uint64_t injected = 0;
  std::uint64_t cleared = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t resyncs = 0;
  std::vector<double> cpu_limits;

  bool operator==(const ReplayFingerprint& o) const {
    return injected == o.injected && cleared == o.cleared &&
           dropped == o.dropped && duplicated == o.duplicated &&
           retransmits == o.retransmits && resyncs == o.resyncs &&
           cpu_limits == o.cpu_limits;
  }
};

ReplayFingerprint run_random_faults(std::uint64_t seed) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  k8s.add_node({});
  core::EscraSystem escra(sim, net, k8s, 16.0, 8 * kGiB);
  std::vector<cluster::Container*> containers;
  for (int i = 0; i < 4; ++i) {
    containers.push_back(&make_container(k8s, "c" + std::to_string(i)));
    containers.back()->submit(seconds(30), 0, nullptr);
  }
  escra.manage(containers);
  escra.start();

  net.set_fault_rng(sim::Rng(seed ^ 0x5eed));
  fault::FaultInjector injector(sim, net, escra);
  sim::Rng fault_rng(seed);
  injector.schedule_random(fault_rng, seconds(10), {}, /*node_count=*/2);
  sim.run_until(seconds(12));

  ReplayFingerprint fp;
  fp.injected = injector.injected();
  fp.cleared = injector.cleared();
  fp.dropped = net.dropped_messages();
  fp.duplicated = net.duplicated_messages();
  fp.retransmits = escra.controller().retransmits();
  fp.resyncs = escra.controller().resyncs();
  for (const cluster::Container* c : containers) {
    fp.cpu_limits.push_back(c->cpu_cgroup().limit_cores());
  }
  return fp;
}

TEST(FaultTest, RandomScheduleReplaysBitForBit) {
  const ReplayFingerprint a = run_random_faults(42);
  const ReplayFingerprint b = run_random_faults(42);
  EXPECT_TRUE(a == b) << "identical seeds must replay identically";
  EXPECT_EQ(a.cleared, a.injected) << "every window clears before the end";
}

TEST(FaultTest, FaultKindNames) {
  EXPECT_STREQ(fault::fault_kind_name(fault::FaultKind::kPartition),
               "partition");
  EXPECT_STREQ(fault::fault_kind_name(fault::FaultKind::kAgentCrash),
               "agent-crash");
  EXPECT_STREQ(fault::fault_kind_name(fault::FaultKind::kControllerCrash),
               "controller-crash");
  EXPECT_STREQ(fault::fault_kind_name(fault::FaultKind::kRpcDrop), "rpc-drop");
  EXPECT_STREQ(fault::fault_kind_name(fault::FaultKind::kRpcDuplicate),
               "rpc-duplicate");
  EXPECT_STREQ(fault::fault_kind_name(fault::FaultKind::kDelaySpike),
               "delay-spike");
}

// --- the checker stays sound through scripted faults --------------------

TEST(FaultTest, InvariantCheckerStaysGreenThroughFaultScript) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  k8s.add_node({});
  core::EscraSystem escra(sim, net, k8s, 16.0, 8 * kGiB);
  std::vector<cluster::Container*> containers;
  for (int i = 0; i < 4; ++i) {
    containers.push_back(&make_container(k8s, "c" + std::to_string(i)));
    containers.back()->submit(seconds(30), 0, nullptr);
  }
  escra.manage(containers);
  obs::Observer observer;
  escra.attach_observer(observer);
  net.attach_metrics(observer.metrics());
  escra.start();

  net.set_fault_rng(sim::Rng(17));
  check::InvariantChecker checker(escra, net, observer);
  fault::FaultInjector injector(sim, net, escra);
  injector.inject_rpc_drop(net::Channel::kControlRpc, 0.3, seconds(1),
                           seconds(3));
  injector.inject_partition(0, seconds(2), seconds(3));
  injector.inject_agent_crash(1, seconds(6), seconds(1));
  injector.inject_controller_crash(seconds(9), seconds(2));
  sim.run_until(seconds(14));
  checker.check_now();

  EXPECT_EQ(injector.injected(), 4u);
  EXPECT_EQ(injector.cleared(), 4u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

}  // namespace
}  // namespace escra
