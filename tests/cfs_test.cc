#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "cfs/cgroup.h"
#include "cfs/node_scheduler.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace escra::cfs {
namespace {

using sim::milliseconds;

constexpr sim::Duration kPeriod = milliseconds(100);

// ------------------------------------------------------------------ CfsCgroup

TEST(CfsCgroupTest, QuotaFollowsCoreLimit) {
  CfsCgroup cg(1, kPeriod, 2.0);
  EXPECT_EQ(cg.quota(), milliseconds(200));
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(200));
  cg.set_limit_cores(0.5);
  EXPECT_EQ(cg.quota(), milliseconds(50));
}

TEST(CfsCgroupTest, ConsumeDrainsRuntime) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.consume(milliseconds(30), false);
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(70));
  EXPECT_EQ(cg.consumed_this_period(), milliseconds(30));
  EXPECT_FALSE(cg.throttled());
}

TEST(CfsCgroupTest, ThrottleRequiresExhaustionAndDemand) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.consume(milliseconds(100), /*wanted_more=*/false);
  EXPECT_FALSE(cg.throttled()) << "no runnable work left: not a throttle";

  CfsCgroup cg2(2, kPeriod, 1.0);
  cg2.consume(milliseconds(100), /*wanted_more=*/true);
  EXPECT_TRUE(cg2.throttled());

  CfsCgroup cg3(3, kPeriod, 1.0);
  cg3.consume(milliseconds(50), /*wanted_more=*/true);
  EXPECT_FALSE(cg3.throttled()) << "runtime remains: not throttled yet";
}

TEST(CfsCgroupTest, OverConsumeThrows) {
  CfsCgroup cg(1, kPeriod, 1.0);
  EXPECT_THROW(cg.consume(milliseconds(101), false), std::logic_error);
  EXPECT_THROW(cg.consume(-1, false), std::invalid_argument);
}

TEST(CfsCgroupTest, EndPeriodEmitsStatsAndRefills) {
  CfsCgroup cg(7, kPeriod, 1.5);
  PeriodStats seen;
  cg.set_period_hook([&](const PeriodStats& s) { seen = s; });
  cg.consume(milliseconds(150), true);
  EXPECT_TRUE(cg.throttled());
  cg.end_period(milliseconds(100));

  EXPECT_EQ(seen.cgroup, 7u);
  EXPECT_EQ(seen.period_end, milliseconds(100));
  EXPECT_EQ(seen.quota, milliseconds(150));
  EXPECT_EQ(seen.unused, 0);
  EXPECT_TRUE(seen.throttled);
  // Refilled for the next period.
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(150));
  EXPECT_FALSE(cg.throttled());
  EXPECT_EQ(cg.consumed_this_period(), 0);
  EXPECT_EQ(cg.periods_elapsed(), 1u);
  EXPECT_EQ(cg.throttle_count(), 1u);
}

TEST(CfsCgroupTest, UnusedRuntimeReported) {
  CfsCgroup cg(1, kPeriod, 1.0);
  PeriodStats seen;
  cg.set_period_hook([&](const PeriodStats& s) { seen = s; });
  cg.consume(milliseconds(40), false);
  cg.end_period(0);
  EXPECT_EQ(seen.unused, milliseconds(60));
  EXPECT_FALSE(seen.throttled);
}

TEST(CfsCgroupTest, MidPeriodRaiseAddsRuntime) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.consume(milliseconds(100), true);
  EXPECT_TRUE(cg.throttled());
  cg.set_limit_cores(2.0);  // cfs_quota_us write mid-period
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(100));
  // More work can now run this period.
  cg.consume(milliseconds(50), false);
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(50));
}

TEST(CfsCgroupTest, MidPeriodLowerClampsAtZero) {
  CfsCgroup cg(1, kPeriod, 2.0);
  cg.consume(milliseconds(150), false);
  cg.set_limit_cores(0.5);  // new quota 50 < consumed 150
  EXPECT_EQ(cg.runtime_remaining(), 0);
}

TEST(CfsCgroupTest, TotalConsumedAccumulatesAcrossPeriods) {
  CfsCgroup cg(1, kPeriod, 1.0);
  for (int i = 0; i < 5; ++i) {
    cg.consume(milliseconds(20), false);
    cg.end_period(i * kPeriod);
  }
  EXPECT_EQ(cg.total_consumed(), milliseconds(100));
}

TEST(CfsCgroupTest, FractionalCoresRoundToMicroseconds) {
  CfsCgroup cg(1, kPeriod, 0.123);
  EXPECT_EQ(cg.quota(), 12300);
}

TEST(CfsCgroupTest, InvalidConstructionThrows) {
  EXPECT_THROW(CfsCgroup(1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(CfsCgroup(1, kPeriod, -1.0), std::invalid_argument);
}

TEST(CfsCgroupTest, BurstCarriesUnusedRuntime) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.set_burst(milliseconds(50));
  cg.consume(milliseconds(30), false);  // 70 ms unused
  cg.end_period(0);
  // Next period: quota (100) + carried (min(70, burst 50)) = 150 ms.
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(150));
  // A 140 ms spike now fits without a throttle.
  cg.consume(milliseconds(140), true);
  EXPECT_FALSE(cg.throttled());
}

TEST(CfsCgroupTest, BurstCarryCappedAtBudget) {
  CfsCgroup cg(1, kPeriod, 2.0);
  cg.set_burst(milliseconds(20));
  cg.end_period(0);  // 200 ms fully unused, but only 20 carries
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(220));
}

TEST(CfsCgroupTest, BurstDoesNotAccumulateAcrossIdlePeriods) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.set_burst(milliseconds(40));
  cg.end_period(0);
  cg.end_period(kPeriod);
  // Carry is capped per refill: 100 + 40, not 100 + 80.
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(140));
}

TEST(CfsCgroupTest, BurstTelemetryStillRelativeToQuota) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.set_burst(milliseconds(100));
  cg.end_period(0);  // runtime now 200
  PeriodStats seen;
  cg.set_period_hook([&](const PeriodStats& s) { seen = s; });
  cg.consume(milliseconds(20), false);
  cg.end_period(kPeriod);
  EXPECT_EQ(seen.quota, milliseconds(100));
  EXPECT_EQ(seen.unused, milliseconds(100)) << "clamped to quota";
}

TEST(CfsCgroupTest, ZeroBurstIsVanillaCfs) {
  CfsCgroup cg(1, kPeriod, 1.0);
  cg.end_period(0);
  EXPECT_EQ(cg.runtime_remaining(), milliseconds(100));
  EXPECT_THROW(cg.set_burst(-1), std::invalid_argument);
}

// ----------------------------------------------------------- max-min fairness

TEST(MaxMinFairTest, UnderloadedGivesEveryoneTheirDemand) {
  const auto g = NodeCpuScheduler::max_min_fair({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
  EXPECT_DOUBLE_EQ(g[2], 3.0);
}

TEST(MaxMinFairTest, EqualDemandsSplitEvenly) {
  const auto g = NodeCpuScheduler::max_min_fair({4.0, 4.0, 4.0, 4.0}, 8.0);
  for (const double x : g) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(MaxMinFairTest, SmallDemandSatisfiedExcessRedistributed) {
  // Classic water-filling: capacity 10, demands {2, 8, 8}.
  const auto g = NodeCpuScheduler::max_min_fair({2.0, 8.0, 8.0}, 10.0);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 4.0);
  EXPECT_DOUBLE_EQ(g[2], 4.0);
}

TEST(MaxMinFairTest, ZeroDemandGetsNothing) {
  const auto g = NodeCpuScheduler::max_min_fair({0.0, 5.0}, 2.0);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
}

TEST(MaxMinFairTest, EmptyInput) {
  EXPECT_TRUE(NodeCpuScheduler::max_min_fair({}, 8.0).empty());
}

class MaxMinFairPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinFairPropertyTest, InvariantsHoldOnRandomInstances) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<double> demands;
    for (int i = 0; i < n; ++i) demands.push_back(rng.uniform(0.0, 4.0));
    const double capacity = rng.uniform(0.5, 16.0);
    const auto g = NodeCpuScheduler::max_min_fair(demands, capacity);

    double total = 0.0;
    double min_unsat = 1e18;
    for (std::size_t i = 0; i < g.size(); ++i) {
      // 1. No one gets more than they asked for, nothing negative.
      ASSERT_GE(g[i], -1e-9);
      ASSERT_LE(g[i], demands[i] + 1e-9);
      total += g[i];
      if (g[i] < demands[i] - 1e-6) min_unsat = std::min(min_unsat, g[i]);
    }
    // 2. Work-conserving: either capacity exhausted or all demand met.
    const double demand_sum =
        std::accumulate(demands.begin(), demands.end(), 0.0);
    ASSERT_LE(total, capacity + 1e-6);
    ASSERT_GE(total, std::min(capacity, demand_sum) - 1e-6);
    // 3. Max-min: every satisfied consumer's demand is <= any unsatisfied
    //    consumer's grant (nobody starves while a bigger flow feasts).
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g[i] >= demands[i] - 1e-6) {
        ASSERT_LE(g[i], min_unsat + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinFairPropertyTest,
                         ::testing::Range(1, 6));

// ----------------------------------------------------------- NodeCpuScheduler

// A deterministic consumer with a fixed backlog of work.
class FakeConsumer : public CpuConsumer {
 public:
  FakeConsumer(CgroupId id, sim::Duration period, double cores,
               double parallelism, sim::Duration backlog)
      : cgroup_(id, period, cores), parallelism_(parallelism), backlog_(backlog) {}

  CfsCgroup& cpu_cgroup() override { return cgroup_; }

  double cpu_demand(sim::Duration slice) override {
    if (backlog_ <= 0) return 0.0;
    return std::min(parallelism_,
                    static_cast<double>(backlog_) / static_cast<double>(slice));
  }

  void run_for(sim::Duration granted, sim::Duration) override {
    executed_ += granted;
    backlog_ -= std::min(backlog_, granted);
  }

  sim::Duration executed() const { return executed_; }
  sim::Duration backlog() const { return backlog_; }

 private:
  CfsCgroup cgroup_;
  double parallelism_;
  sim::Duration backlog_;
  sim::Duration executed_ = 0;
};

TEST(NodeCpuSchedulerTest, InvalidConfigThrows) {
  sim::Simulation sim;
  EXPECT_THROW(
      NodeCpuScheduler(sim, {.cores = 0.0}), std::invalid_argument);
  EXPECT_THROW(NodeCpuScheduler(
                   sim, {.cores = 4, .slice = milliseconds(30),
                         .period = milliseconds(100)}),
               std::invalid_argument);
}

TEST(NodeCpuSchedulerTest, UnconstrainedWorkRunsAtParallelism) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 8.0});
  FakeConsumer c(1, kPeriod, /*cores=*/8.0, /*parallelism=*/2.0,
                 /*backlog=*/milliseconds(1000));
  sched.attach(&c);
  sim.run_until(milliseconds(100));
  // 2 cores for 100ms = 200ms of core-time.
  EXPECT_EQ(c.executed(), milliseconds(200));
  EXPECT_FALSE(c.cpu_cgroup().throttle_count() > 0);
}

TEST(NodeCpuSchedulerTest, QuotaThrottlesExcessDemand) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 8.0});
  FakeConsumer c(1, kPeriod, /*cores=*/0.5, /*parallelism=*/4.0,
                 /*backlog=*/milliseconds(1000));
  sched.attach(&c);
  sim.run_until(milliseconds(500));
  // 0.5 cores over 500ms = 250ms core-time despite 4-way demand.
  EXPECT_EQ(c.executed(), milliseconds(250));
  EXPECT_EQ(c.cpu_cgroup().throttle_count(), 5u);  // throttled every period
}

TEST(NodeCpuSchedulerTest, NodeContentionIsNotCfsThrottling) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 2.0});
  // Two consumers each want 2 cores with quota for 2: node is the binding
  // constraint, so CFS must NOT mark them throttled.
  FakeConsumer a(1, kPeriod, 2.0, 2.0, milliseconds(10000));
  FakeConsumer b(2, kPeriod, 2.0, 2.0, milliseconds(10000));
  sched.attach(&a);
  sched.attach(&b);
  sim.run_until(milliseconds(500));
  EXPECT_EQ(a.executed() + b.executed(), milliseconds(1000));
  EXPECT_EQ(a.cpu_cgroup().throttle_count(), 0u);
  EXPECT_EQ(b.cpu_cgroup().throttle_count(), 0u);
}

TEST(NodeCpuSchedulerTest, CapacitySharedMaxMinFairly) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 3.0});
  FakeConsumer small(1, kPeriod, 8.0, 1.0, milliseconds(100000));
  FakeConsumer big(2, kPeriod, 8.0, 4.0, milliseconds(100000));
  sched.attach(&small);
  sched.attach(&big);
  sim.run_until(milliseconds(1000));
  // small is capped by its own parallelism (1 core); big gets the rest (2).
  EXPECT_NEAR(static_cast<double>(small.executed()), 1000e3, 1e3);
  EXPECT_NEAR(static_cast<double>(big.executed()), 2000e3, 1e3);
}

TEST(NodeCpuSchedulerTest, DetachStopsScheduling) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 4.0});
  FakeConsumer c(1, kPeriod, 4.0, 1.0, milliseconds(100000));
  sched.attach(&c);
  sim.run_until(milliseconds(100));
  const sim::Duration before = c.executed();
  sched.detach(&c);
  sim.run_until(milliseconds(200));
  EXPECT_EQ(c.executed(), before);
}

TEST(NodeCpuSchedulerTest, PeriodHooksFireEveryPeriod) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 4.0});
  FakeConsumer c(1, kPeriod, 1.0, 1.0, milliseconds(100000));
  int hooks = 0;
  c.cpu_cgroup().set_period_hook([&](const PeriodStats&) { ++hooks; });
  sched.attach(&c);
  sim.run_until(milliseconds(1000));
  EXPECT_EQ(hooks, 10);
}

TEST(NodeCpuSchedulerTest, UsageTrackingReportsBusyCores) {
  sim::Simulation sim;
  NodeCpuScheduler sched(sim, {.cores = 8.0});
  FakeConsumer c(1, kPeriod, 8.0, 3.0, milliseconds(100000));
  sched.attach(&c);
  sim.run_until(milliseconds(50));
  EXPECT_NEAR(sched.last_slice_usage_cores(), 3.0, 0.01);
}

}  // namespace
}  // namespace escra::cfs
