// Property test for the desired-state slot machinery under the coalesced
// (batched) limit-RPC path — and, as a control, the legacy one-RPC-per-update
// path. An rng-scripted interleaving of register/deregister churn, grant-
// and shrink-provoking load, lossy/duplicating control RPC (acks lost,
// requests dropped, retransmits, dup deliveries) runs against a reference
// model fed from the decision trace's record hook:
//
//   * no desired-state slot ever regresses its sequence number — every
//     kRpcIssued's open slot carries a seq strictly above anything that key
//     offered before;
//   * every apply (the ack-generating event) matches a seq that key
//     actually offered, and applies per key are strictly increasing
//     (exactly-once, no replayed or fabricated acks);
//   * retransmits touch only un-acked entries: a kRetransmit's key must
//     still hold an open pending slot at that instant — a partial-batch ack
//     must close exactly its own entries and never drag an acked sibling
//     back onto the wire.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/config.h"
#include "core/controller.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// Reference model: folds trace events as they are recorded. Violations are
// collected (not asserted inline) so a failure reports the full story.
struct SlotModel {
  core::Controller* controller = nullptr;
  std::map<std::uint64_t, std::uint64_t> last_offered;  // key -> max seq
  std::map<std::uint64_t, std::set<std::uint64_t>> offered;
  std::map<std::uint64_t, std::uint64_t> last_applied;
  std::uint64_t issues = 0, applies = 0, retransmits = 0;
  std::vector<std::string> violations;

  static std::uint64_t key_of(const obs::TraceEvent& e) {
    return static_cast<std::uint64_t>(e.container) * 4 +
           static_cast<std::uint64_t>(e.before);
  }

  void flag(const std::string& what, const obs::TraceEvent& e) {
    violations.push_back(what + " (event id " + std::to_string(e.id) +
                         ", container " + std::to_string(e.container) +
                         ", resource " + std::to_string(e.before) + ")");
  }

  // The open slot for `key`, or 0 when closed. kRpcIssued and kRetransmit
  // fire synchronously from the slot's owner, so this snapshot is exact.
  std::uint64_t open_seq(std::uint64_t key) const {
    for (const core::Controller::TakeoverSlot& s :
         controller->pending_slots()) {
      const std::uint64_t k = static_cast<std::uint64_t>(s.id) * 4 +
                              static_cast<std::uint64_t>(s.resource);
      if (k == key) return s.seq;
    }
    return 0;
  }

  void on_event(const obs::TraceEvent& e) {
    switch (e.kind) {
      case obs::EventKind::kRpcIssued: {
        ++issues;
        const std::uint64_t key = key_of(e);
        const std::uint64_t seq = open_seq(key);
        if (seq == 0) {
          flag("kRpcIssued with no open slot", e);
          break;
        }
        const auto it = last_offered.find(key);
        if (it != last_offered.end() && seq <= it->second) {
          flag("slot seq regressed: offered " + std::to_string(seq) +
                   " after " + std::to_string(it->second),
               e);
        }
        last_offered[key] = seq;
        offered[key].insert(seq);
        break;
      }
      case obs::EventKind::kRpcApplied: {
        ++applies;
        const std::uint64_t key = key_of(e);
        const std::uint64_t seq = static_cast<std::uint64_t>(e.detail);
        if (!offered[key].contains(seq)) {
          flag("applied seq " + std::to_string(seq) + " was never offered", e);
        }
        const auto it = last_applied.find(key);
        if (it != last_applied.end() && seq <= it->second) {
          flag("apply seq not strictly increasing: " + std::to_string(seq) +
                   " after " + std::to_string(it->second),
               e);
        }
        last_applied[key] = seq;
        break;
      }
      case obs::EventKind::kRetransmit: {
        ++retransmits;
        const std::uint64_t key = key_of(e);
        if (e.detail < 1) flag("retransmit with attempt < 1", e);
        const std::uint64_t seq = open_seq(key);
        if (seq == 0) {
          flag("retransmit of a closed (acked) slot", e);
        } else if (seq != last_offered[key]) {
          flag("retransmit of a superseded seq", e);
        }
        break;
      }
      default:
        break;
    }
  }
};

struct RunStats {
  std::uint64_t issues = 0, applies = 0, retransmits = 0;
  std::uint64_t batched = 0, entries = 0, dups = 0;
};

RunStats run_interleaving(std::uint64_t seed, bool batched) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  for (int n = 0; n < 4; ++n) k8s.add_node({.cores = 8.0});

  std::vector<cluster::Container*> containers;
  for (int i = 0; i < 12; ++i) {
    cluster::ContainerSpec spec;
    spec.name = "p" + std::to_string(i);
    spec.base_memory = 32 * kMiB;
    spec.max_parallelism = 4.0;
    containers.push_back(&k8s.create_container(spec, 0.5, 128 * kMiB));
  }

  core::EscraConfig cfg;
  cfg.batch_limit_updates = batched;
  core::EscraSystem escra(sim, net, k8s, 24.0, 8 * kGiB, cfg);
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage({containers.begin(), containers.begin() + 8});
  escra.start();

  SlotModel model;
  model.controller = &escra.controller();
  observer.trace().set_record_hook(
      [&model](const obs::TraceEvent& e) { model.on_event(e); });

  // Lossy, duplicating control channel: acks vanish, requests vanish,
  // requests arrive twice — the retransmit/idempotency machinery runs hot.
  net.set_fault_rng(sim::Rng(seed));
  net.set_drop_rate(net::Channel::kControlRpc, 0.15);
  net.set_duplicate_rate(net::Channel::kControlRpc, 0.05);

  // Rng-scripted interleaving: oscillating load provokes grants and
  // shrinks every period; the tail containers adopt/release on a churn
  // timer, interleaving register/deregister with in-flight updates.
  sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = 0; i < containers.size(); ++i) {
    cluster::Container* c = containers[i];
    sim::Rng stream = rng.fork();
    const int phase = static_cast<int>(i);
    sim::Simulation* simp = &sim;
    sim.schedule_every(
        milliseconds(1 + static_cast<sim::Duration>(i)), milliseconds(25),
        [c, simp, phase, stream]() mutable {
          const bool on =
              ((simp->now() / milliseconds(400)) + phase) % 2 == 0;
          if (!on) return;
          for (int b = 0; b < 2; ++b) {
            c->submit(milliseconds(1 + stream.uniform_int(0, 14)),
                      memcg::kMiB, [](bool) {});
          }
        });
  }
  sim::Rng churn = rng.fork();
  std::vector<bool> adopted(containers.size(), true);
  for (std::size_t i = 8; i < containers.size(); ++i) adopted[i] = false;
  sim.schedule_every(milliseconds(150), milliseconds(150),
                     [&escra, &containers, &adopted, churn]() mutable {
                       const std::size_t i = static_cast<std::size_t>(
                           churn.uniform_int(8, 11));
                       if (adopted[i]) {
                         escra.release(*containers[i]);
                       } else {
                         escra.adopt(*containers[i]);
                       }
                       adopted[i] = !adopted[i];
                     });

  sim.run_until(seconds(5));
  observer.trace().set_record_hook(nullptr);

  EXPECT_TRUE(model.violations.empty()) << [&] {
    std::string all;
    for (const std::string& v : model.violations) all += v + "\n";
    return all;
  }();

  RunStats stats;
  stats.issues = model.issues;
  stats.applies = model.applies;
  stats.retransmits = model.retransmits;
  stats.batched = observer.h.batched_rpcs->value();
  stats.entries = observer.h.batch_entries->value();
  stats.dups = observer.h.dup_suppressed->value();
  return stats;
}

TEST(BatchPropertyTest, RandomInterleavingsHoldSlotInvariantsWhenBatched) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 0xe5c7aull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunStats s = run_interleaving(seed, /*batched=*/true);
    // The scenario must actually exercise the machinery, not pass vacuously.
    EXPECT_GT(s.issues, 100u);
    EXPECT_GT(s.applies, 100u);
    EXPECT_GT(s.retransmits, 0u) << "15% drop must force retransmits";
    EXPECT_GT(s.batched, 0u);
    EXPECT_GT(s.entries, s.batched)
        << "same-node updates in one tick must coalesce (entries > RPCs)";
  }
}

TEST(BatchPropertyTest, LegacyPerUpdatePathHoldsTheSameInvariants) {
  const RunStats s = run_interleaving(42, /*batched=*/false);
  EXPECT_GT(s.issues, 100u);
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_EQ(s.batched, 0u) << "legacy mode must not send batched RPCs";
  EXPECT_EQ(s.entries, 0u);
}

}  // namespace
}  // namespace escra
