// End-to-end integration and property tests: a full application under Escra
// on a multi-node cluster, checking the paper's headline behaviours — the
// Distributed Container invariant at runtime, zero OOM kills, limit tracking,
// cross-node resource sharing, and reclamation.
#include <gtest/gtest.h>

#include "app/benchmarks.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::unique_ptr<app::Application> application;
  std::unique_ptr<core::EscraSystem> escra;

  Rig(app::GraphSpec graph, double global_cpu, memcg::Bytes global_mem,
      int nodes = 3, core::EscraConfig cfg = {}) {
    for (int i = 0; i < nodes; ++i) k8s.add_node({});
    application = std::make_unique<app::Application>(
        k8s, std::move(graph), sim::Rng(7), 1.0, 512 * kMiB);
    escra = std::make_unique<core::EscraSystem>(sim, net, k8s, global_cpu,
                                                global_mem, cfg);
    escra->manage(application->containers());
    escra->start();
  }
};

TEST(EscraIntegrationTest, InvariantHoldsThroughoutARun) {
  Rig rig(app::make_teastore(), 12.0, 8 * kGiB);
  workload::LoadGenerator gen(
      rig.sim, std::make_unique<workload::ExpArrivals>(200.0, sim::Rng(3)),
      [&](workload::LoadGenerator::Done done) {
        rig.application->submit_request(std::move(done));
      });
  gen.run(seconds(5), seconds(35));

  bool violated = false;
  rig.sim.schedule_every(milliseconds(100), milliseconds(100), [&] {
    // The Distributed Container runtime invariant: the sum of actual cgroup
    // limits never exceeds the global application limits.
    double cpu_sum = 0.0;
    memcg::Bytes mem_sum = 0;
    for (const cluster::Container* c : rig.application->containers()) {
      cpu_sum += c->cpu_cgroup().limit_cores();
      mem_sum += c->mem_cgroup().limit();
    }
    // In-flight limit-update RPCs can momentarily leave cgroups above the
    // shadow state, but never above the global limit plus one grant.
    if (cpu_sum > rig.escra->app().cpu_limit() + 1e-6) violated = true;
    if (mem_sum > rig.escra->app().mem_limit()) violated = true;
  });
  rig.sim.run_until(seconds(40));
  EXPECT_FALSE(violated);
  EXPECT_GT(gen.succeeded(), 5000u);
}

TEST(EscraIntegrationTest, ZeroOomKillsUnderMemoryPressure) {
  // Section VI-E: "In all 32 experiments, Escra experienced zero OOMs."
  Rig rig(app::make_teastore(), 12.0, 6 * kGiB);
  workload::LoadGenerator gen(
      rig.sim, std::make_unique<workload::ExpArrivals>(250.0, sim::Rng(4)),
      [&](workload::LoadGenerator::Done done) {
        rig.application->submit_request(std::move(done));
      });
  gen.run(seconds(5), seconds(35));
  rig.sim.run_until(seconds(40));
  std::uint64_t oom_kills = 0;
  for (const cluster::Container* c : rig.application->containers()) {
    oom_kills += c->oom_kill_count();
  }
  EXPECT_EQ(oom_kills, 0u);
  EXPECT_EQ(gen.failed(), 0u);
}

TEST(EscraIntegrationTest, LimitsTrackUsageWithinTightBand) {
  Rig rig(app::make_teastore(), 12.0, 8 * kGiB);
  workload::LoadGenerator gen(
      rig.sim, std::make_unique<workload::FixedArrivals>(200.0),
      [&](workload::LoadGenerator::Done done) {
        rig.application->submit_request(std::move(done));
      });
  gen.run(seconds(5), seconds(40));
  // After convergence, per-container CPU slack should be a fraction of a
  // core at the median (the paper's ~0.1-0.3 core medians).
  sim::SampleSet slack;
  std::vector<sim::Duration> prev(rig.application->containers().size(), 0);
  rig.sim.schedule_every(seconds(1), seconds(1), [&] {
    if (rig.sim.now() < seconds(20)) return;
    const auto& cs = rig.application->containers();
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const sim::Duration consumed = cs[i]->cpu_cgroup().total_consumed();
      const double used = static_cast<double>(consumed - prev[i]) / 1e6;
      prev[i] = consumed;
      slack.add(cs[i]->cpu_cgroup().limit_cores() - used);
    }
  });
  rig.sim.run_until(seconds(20));
  // Prime the prev[] counters before measurement starts.
  rig.sim.run_until(seconds(40));
  EXPECT_LT(slack.percentile(50), 0.6);
}

TEST(EscraIntegrationTest, IdleApplicationShrinksToFloors) {
  Rig rig(app::make_teastore(), 12.0, 8 * kGiB);
  rig.sim.run_until(seconds(30));  // no load at all (background only)
  for (const cluster::Container* c : rig.application->containers()) {
    EXPECT_LT(c->cpu_cgroup().limit_cores(), 0.6) << c->name();
    // Memory reclaimed to usage + delta.
    EXPECT_LE(c->mem_cgroup().slack(), 52 * kMiB) << c->name();
  }
  EXPECT_GT(rig.escra->app().cpu_unallocated(), 9.0);
}

TEST(EscraIntegrationTest, ResourcesShiftBetweenContainersAtRuntime) {
  // The Distributed Container's reason to exist (Section VI-C): when one
  // container goes idle and another is throttled, capacity moves — without
  // redeployment and within the same global limit.
  app::GraphSpec g;
  g.name = "shift";
  app::ServiceSpec a;
  a.name = "phase-a";
  a.cpu_per_visit = milliseconds(5);
  a.cpu_jitter_sigma = 0.0;
  a.startup_cpu = 0;
  a.background_cpu_per_sec = 0;
  a.gc_cpu = 0;
  app::ServiceSpec b = a;
  b.name = "phase-b";
  g.services = {a, b};
  // No edges: requests to each service injected directly below.
  Rig rig(std::move(g), /*global_cpu=*/3.0, 4 * kGiB, /*nodes=*/2);

  cluster::Container* ca = rig.application->service_containers(0)[0];
  cluster::Container* cb = rig.application->service_containers(1)[0];

  // Phase 1: only A is loaded.
  rig.sim.schedule_every(milliseconds(10), milliseconds(10), [&] {
    if (rig.sim.now() < seconds(20)) {
      ca->submit(milliseconds(20), kMiB, nullptr);  // ~2 cores of demand
    } else {
      cb->submit(milliseconds(20), kMiB, nullptr);
    }
  });
  rig.sim.run_until(seconds(19));
  const double a_limit_loaded = ca->cpu_cgroup().limit_cores();
  EXPECT_GT(a_limit_loaded, 1.2) << "A holds most of the 3-core budget";

  // Phase 2: load moves to B; within seconds the budget follows.
  rig.sim.run_until(seconds(40));
  EXPECT_GT(cb->cpu_cgroup().limit_cores(), 1.2);
  EXPECT_LT(ca->cpu_cgroup().limit_cores(), 0.7);
  EXPECT_LE(ca->cpu_cgroup().limit_cores() + cb->cpu_cgroup().limit_cores(),
            3.0 + 1e-6);
}

TEST(EscraIntegrationTest, OomRescueUnderConcurrentPressure) {
  // Several containers outgrow their reclaimed limits at once; every one of
  // them must be rescued from the sigma-withheld pool / reclamation.
  app::GraphSpec g;
  g.name = "memhog";
  for (int i = 0; i < 4; ++i) {
    app::ServiceSpec s;
    s.name = "hog" + std::to_string(i);
    s.cpu_per_visit = milliseconds(3);
    s.cpu_jitter_sigma = 0.0;
    s.mem_per_visit = 80 * kMiB;  // > delta: outruns the reclaimed margin
    s.startup_cpu = 0;
    s.background_cpu_per_sec = 0;
    s.gc_cpu = 0;
    g.services.push_back(s);
  }
  g.edges = {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}};
  Rig rig(std::move(g), 8.0, 4 * kGiB);
  rig.sim.run_until(seconds(6));  // one reclamation pass: limits near usage

  int failures = 0, ok = 0;
  for (int i = 0; i < 50; ++i) {
    rig.application->submit_request([&](bool o) { o ? ++ok : ++failures; });
  }
  rig.sim.run_until(seconds(12));
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(ok, 50);
  EXPECT_GT(rig.escra->controller().oom_rescues(), 0u);
  std::uint64_t kills = 0;
  for (const cluster::Container* c : rig.application->containers()) {
    kills += c->oom_kill_count();
  }
  EXPECT_EQ(kills, 0u);
}

TEST(EscraIntegrationTest, TelemetryVolumeMatchesContainerCountAndPeriod) {
  Rig rig(app::make_teastore(), 12.0, 8 * kGiB);
  rig.sim.run_until(seconds(10));
  // 7 containers x 10 periods/s x 10 s = 700 messages (+- edge effects).
  const auto msgs = rig.net.stats(net::Channel::kCpuTelemetry).messages;
  EXPECT_NEAR(static_cast<double>(msgs), 700.0, 30.0);
}

TEST(EscraIntegrationTest, DeterministicForFixedSeed) {
  auto run_once = [] {
    Rig rig(app::make_teastore(), 12.0, 8 * kGiB);
    workload::LoadGenerator gen(
        rig.sim, std::make_unique<workload::ExpArrivals>(150.0, sim::Rng(5)),
        [&](workload::LoadGenerator::Done done) {
          rig.application->submit_request(std::move(done));
        });
    gen.run(0, seconds(10));
    rig.sim.run_until(seconds(12));
    return std::tuple(gen.succeeded(), gen.failed(),
                      rig.escra->controller().stats_received(),
                      rig.escra->controller().limit_updates_sent(),
                      rig.net.total_bytes());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace escra
