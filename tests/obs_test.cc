// Unit tests for the control-plane observability subsystem (src/obs):
// metrics registry semantics (including strict duplicate-name rejection),
// trace ring-buffer eviction, causal-chain queries, deterministic JSONL
// export/import, and the loop profiler.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace escra::obs {
namespace {

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, CountersGaugesAndDistributionsRegisterAndUpdate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests");
  Gauge& g = reg.gauge("pool");
  DistributionMetric& d = reg.distribution("latency");

  c.inc();
  c.inc(4);
  g.set(2.5);
  g.add(-0.5);
  d.record(100);
  d.record(300);

  EXPECT_EQ(c.value(), 5u);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.stat().mean(), 200.0);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.has("requests"));
  EXPECT_EQ(reg.find_counter("requests"), &c);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_counter("pool"), nullptr);  // wrong kind
}

TEST(MetricsRegistryTest, DuplicateNameThrowsAcrossAllKinds) {
  // Strict registration: re-registering must throw, not hand back a second
  // metric that silently splits the first one's updates.
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.counter("x"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.distribution("x"), std::invalid_argument);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::invalid_argument);
  reg.distribution("z");
  EXPECT_THROW(reg.gauge("z"), std::invalid_argument);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotCapturesNameOrderedValues) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(7);
  reg.gauge("a.gauge").set(1.5);
  reg.distribution("c.dist").record(10);

  const MetricsSnapshot snap = reg.snapshot(sim::seconds(3));
  EXPECT_EQ(snap.time, sim::seconds(3));
  ASSERT_EQ(snap.values.size(), 3u);
  // Name order regardless of kind or registration order.
  EXPECT_EQ(snap.values[0].first, "a.gauge");
  EXPECT_DOUBLE_EQ(snap.values[0].second, 1.5);
  EXPECT_EQ(snap.values[1].first, "b.count");
  EXPECT_DOUBLE_EQ(snap.values[1].second, 7.0);
  EXPECT_EQ(snap.values[2].first, "c.dist");
  EXPECT_DOUBLE_EQ(snap.values[2].second, 1.0);  // sample count
}

TEST(MetricsRegistryTest, SnapshotIsPointInTime) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.inc(2);
  reg.capture(sim::seconds(1));
  c.inc(3);
  reg.capture(sim::seconds(2));

  ASSERT_EQ(reg.snapshots().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.snapshots()[0].values[0].second, 2.0);
  EXPECT_DOUBLE_EQ(reg.snapshots()[1].values[0].second, 5.0);
}

TEST(MetricsRegistryTest, PeriodicSnapshotsFollowTheSimClock) {
  sim::Simulation sim;
  MetricsRegistry reg;
  Counter& c = reg.counter("ticks");
  reg.start_periodic_snapshots(sim, sim::seconds(1));
  sim.schedule_every(sim::milliseconds(400), sim::milliseconds(400),
                     [&c] { c.inc(); });
  sim.run_until(sim::milliseconds(3500));

  ASSERT_EQ(reg.snapshots().size(), 3u);
  EXPECT_EQ(reg.snapshots()[0].time, sim::seconds(1));
  EXPECT_EQ(reg.snapshots()[2].time, sim::seconds(3));
  // 400ms ticks: 2 by t=1s, 7 by t=3s (t=2800 is the 7th).
  EXPECT_DOUBLE_EQ(reg.snapshots()[0].values[0].second, 2.0);
  EXPECT_DOUBLE_EQ(reg.snapshots()[2].values[0].second, 7.0);
  EXPECT_THROW(reg.start_periodic_snapshots(sim, sim::seconds(1)),
               std::logic_error);
}

TEST(MetricsRegistryTest, CsvExportsSnapshotSeries) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  reg.gauge("b").set(0.5);
  c.inc();
  reg.capture(sim::seconds(1));
  c.inc();
  reg.capture(sim::seconds(2));

  std::ostringstream out;
  reg.export_csv(out, sim::seconds(2));
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_s,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1.000000,1,0.5"), std::string::npos);
  EXPECT_NE(csv.find("2.000000,2,0.5"), std::string::npos);
}

// --- TraceBuffer ---

TraceEvent make_event(EventKind kind, std::uint32_t container,
                      sim::TimePoint t, EventId cause = 0) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = kind;
  ev.container = container;
  ev.cause = cause;
  return ev;
}

TEST(TraceBufferTest, AssignsDenseIdsAndFindsById) {
  TraceBuffer trace(8);
  const EventId a =
      trace.record(make_event(EventKind::kThrottleObserved, 1, 100));
  const EventId b = trace.record(make_event(EventKind::kCpuGrant, 1, 100, a));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_NE(trace.find(a), nullptr);
  EXPECT_EQ(trace.find(a)->kind, EventKind::kThrottleObserved);
  EXPECT_EQ(trace.find(b)->cause, a);
  EXPECT_EQ(trace.find(99), nullptr);
  EXPECT_EQ(trace.find(0), nullptr);
}

TEST(TraceBufferTest, EvictsOldestAtCapacityAndNeverReusesIds) {
  TraceBuffer trace(4);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    trace.record(make_event(EventKind::kCpuGrant, i, i * 10));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.recorded(), 10u);
  EXPECT_EQ(trace.evicted(), 6u);
  // Events 1..6 are gone; 7..10 remain, oldest first.
  EXPECT_EQ(trace.find(6), nullptr);
  ASSERT_NE(trace.find(7), nullptr);
  EXPECT_EQ(trace.at(0).id, 7u);
  EXPECT_EQ(trace.at(3).id, 10u);
}

TEST(TraceBufferTest, ChainWalksCausesRootFirst) {
  TraceBuffer trace(16);
  const EventId t =
      trace.record(make_event(EventKind::kThrottleObserved, 3, 100));
  const EventId g = trace.record(make_event(EventKind::kCpuGrant, 3, 100, t));
  const EventId r = trace.record(make_event(EventKind::kRpcIssued, 3, 100, g));
  const EventId a = trace.record(make_event(EventKind::kRpcApplied, 3, 250, r));

  const auto chain = trace.chain(a);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].id, t);
  EXPECT_EQ(chain[1].id, g);
  EXPECT_EQ(chain[2].id, r);
  EXPECT_EQ(chain[3].id, a);
  // Chain ending at an evicted/unknown id is empty.
  EXPECT_TRUE(trace.chain(99).empty());
}

TEST(TraceBufferTest, ChainStopsAtEvictedCause) {
  TraceBuffer trace(2);
  const EventId a = trace.record(make_event(EventKind::kThrottleObserved, 1, 1));
  const EventId b = trace.record(make_event(EventKind::kCpuGrant, 1, 2, a));
  const EventId c = trace.record(make_event(EventKind::kRpcIssued, 1, 3, b));
  // `a` evicted by now; the chain covers what the ring still holds.
  ASSERT_EQ(trace.find(a), nullptr);
  const auto chain = trace.chain(c);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].id, b);
  EXPECT_EQ(chain[1].id, c);
}

TEST(TraceBufferTest, ContainerTimelineAndLastQuery) {
  TraceBuffer trace(16);
  trace.record(make_event(EventKind::kCpuGrant, 1, 10));
  trace.record(make_event(EventKind::kCpuGrant, 2, 20));
  trace.record(make_event(EventKind::kCpuShrink, 1, 30));

  const auto timeline = trace.for_container(1);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].kind, EventKind::kCpuGrant);
  EXPECT_EQ(timeline[1].kind, EventKind::kCpuShrink);

  const auto last = trace.last(EventKind::kCpuGrant, 2);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time, 20);
  EXPECT_FALSE(trace.last(EventKind::kReclaim, 1).has_value());
}

TEST(TraceBufferTest, KindNamesRoundTrip) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    const auto parsed = event_kind_from_name(event_kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << event_kind_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(event_kind_from_name("bogus").has_value());
}

TEST(TraceBufferTest, JsonlExportIsDeterministicAndRoundTrips) {
  const auto build = [] {
    TraceBuffer trace(8);
    TraceEvent ev = make_event(EventKind::kThrottleObserved, 4, 100);
    ev.node = 2;
    ev.before = 0.30000000000000004;  // exercises %.17g round-tripping
    ev.after = 0.30000000000000004;
    ev.detail = 12345;
    const EventId t = trace.record(ev);
    TraceEvent grant = make_event(EventKind::kCpuGrant, 4, 100, t);
    grant.before = 0.3;
    grant.after = 0.6;
    trace.record(grant);
    return trace;
  };

  std::ostringstream out1, out2;
  build().export_jsonl(out1);
  build().export_jsonl(out2);
  EXPECT_EQ(out1.str(), out2.str());  // identical runs, identical bytes

  std::istringstream in(out1.str());
  const TraceBuffer parsed = TraceBuffer::import_jsonl(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at(0).id, 1u);
  EXPECT_EQ(parsed.at(0).kind, EventKind::kThrottleObserved);
  EXPECT_EQ(parsed.at(0).node, 2u);
  EXPECT_DOUBLE_EQ(parsed.at(0).before, 0.30000000000000004);
  EXPECT_EQ(parsed.at(0).detail, 12345);
  EXPECT_EQ(parsed.at(1).cause, 1u);

  // Re-exporting the parsed buffer reproduces the file byte for byte.
  std::ostringstream out3;
  parsed.export_jsonl(out3);
  EXPECT_EQ(out3.str(), out1.str());
}

TEST(TraceBufferTest, ImportRejectsMalformedLines) {
  std::istringstream in("not json at all\n");
  EXPECT_THROW(TraceBuffer::import_jsonl(in), std::runtime_error);
}

// --- LoopProfiler ---

TEST(LoopProfilerTest, RecordLoopSplitsStages) {
  LoopProfiler prof;
  // fire=0, ingest=80us, decide=80us, apply=230us.
  prof.record_loop(0, 80, 80, 230);
  prof.record_loop(sim::seconds(1), sim::seconds(1) + 80, sim::seconds(1) + 80,
                   sim::seconds(1) + 230);

  EXPECT_EQ(prof.loops_completed(), 2u);
  EXPECT_DOUBLE_EQ(prof.stat(LoopStage::kFireToIngest).mean(), 80.0);
  EXPECT_DOUBLE_EQ(prof.stat(LoopStage::kIngestToDecide).mean(), 0.0);
  EXPECT_DOUBLE_EQ(prof.stat(LoopStage::kDecideToApply).mean(), 150.0);
  EXPECT_DOUBLE_EQ(prof.stat(LoopStage::kEndToEnd).mean(), 230.0);
  EXPECT_EQ(prof.histogram(LoopStage::kEndToEnd).count(), 2u);
}

TEST(LoopProfilerTest, RejectsNegativeLatencyAndRendersTable) {
  LoopProfiler prof;
  EXPECT_THROW(prof.record(LoopStage::kEndToEnd, -1), std::invalid_argument);
  prof.record_loop(0, 100, 100, 300);
  const std::string table = prof.table();
  EXPECT_NE(table.find("fire->ingest"), std::string::npos);
  EXPECT_NE(table.find("end-to-end"), std::string::npos);
}

// --- Observer ---

TEST(ObserverTest, PreRegistersAllHandles) {
  Observer observer;
  EXPECT_NE(observer.h.stats_ingested, nullptr);
  EXPECT_NE(observer.h.containers_active, nullptr);
  EXPECT_NE(observer.h.pool_cpu_unallocated, nullptr);
  EXPECT_NE(observer.h.agent_limit_applies, nullptr);
  EXPECT_EQ(observer.metrics().find_counter("controller.stats_ingested"),
            observer.h.stats_ingested);
  // The handle names are claimed: user registration of the same name throws.
  EXPECT_THROW(observer.metrics().counter("allocator.cpu_grants"),
               std::invalid_argument);
  // record() forwards to the trace buffer.
  TraceEvent ev;
  ev.kind = EventKind::kReclaim;
  EXPECT_EQ(observer.record(ev), 1u);
  EXPECT_EQ(observer.trace().size(), 1u);
}

}  // namespace
}  // namespace escra::obs
