// src/bw: token-bucket shaping edge cases, NodeShaper queueing/release,
// ClusterShaper telemetry, send_flow end-to-end visibility, the Escra
// grant-on-saturation loop, and byte-identical determinism of the release
// schedule across sweep worker counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bw/shaper.h"
#include "bw/token_bucket.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"
#include "sweep/runner.h"

namespace escra::bw {
namespace {

using sim::microseconds;
using sim::milliseconds;
using sim::seconds;

// --- TokenBucket ---------------------------------------------------------

TEST(TokenBucketTest, StartsFullAndRefillsAtRate) {
  TokenBucket b(1.0e6, 50'000.0);  // 1 MB/s, 50 KB burst
  EXPECT_TRUE(b.try_consume(0, 50'000.0));
  EXPECT_FALSE(b.try_consume(0, 1'000.0));
  // 10 ms at 1 MB/s accrues exactly 10 KB.
  EXPECT_EQ(b.time_until(0, 10'000.0), milliseconds(10));
  EXPECT_FALSE(b.try_consume(milliseconds(10) - 1, 10'000.0));
  EXPECT_TRUE(b.try_consume(milliseconds(10), 10'000.0));
}

TEST(TokenBucketTest, BurstCreditAccruesWhileIdleButIsCapped) {
  TokenBucket b(1.0e6, 50'000.0);
  ASSERT_TRUE(b.try_consume(0, 50'000.0));
  // A long idle refills to the burst ceiling, not beyond: after 10 idle
  // seconds (10 MB worth of rate) only one 50 KB burst is available.
  EXPECT_DOUBLE_EQ(b.tokens(seconds(10)), 50'000.0);
  EXPECT_TRUE(b.try_consume(seconds(10), 50'000.0));
  EXPECT_FALSE(b.try_consume(seconds(10), 1.0));
}

TEST(TokenBucketTest, ZeroRateMeansUnlimited) {
  TokenBucket b(0.0, 0.0);
  EXPECT_TRUE(b.unlimited());
  EXPECT_TRUE(b.try_consume(0, 1.0e12));
  EXPECT_TRUE(b.try_consume(0, 1.0e12));
  EXPECT_EQ(b.time_until(0, 1.0e12), 0);
}

TEST(TokenBucketTest, OversizedMessageLeavesDebtInsteadOfDeadlocking) {
  TokenBucket b(1.0e6, 50'000.0);
  // 80 KB > burst: admitted on a full bucket, drives the level negative.
  EXPECT_TRUE(b.try_consume(0, 80'000.0));
  EXPECT_LT(b.tokens(0), 0.0);
  // The next message waits for the debt plus its own credit.
  EXPECT_GT(b.time_until(0, 10'000.0), milliseconds(30));
  // And a second oversized message needs a full bucket again, not forever.
  EXPECT_EQ(b.time_until(0, 80'000.0), milliseconds(80));
}

TEST(TokenBucketTest, RateChangeSettlesOldCreditFirst) {
  TokenBucket b(1.0e6, 50'000.0);
  ASSERT_TRUE(b.try_consume(0, 50'000.0));  // empty at t=0
  // 20 ms at the old 1 MB/s rate banks 20 KB, then the rate drops 10x.
  b.set_rate(milliseconds(20), 0.1e6, 50'000.0);
  EXPECT_DOUBLE_EQ(b.tokens(milliseconds(20)), 20'000.0);
  // Further accrual runs at the new rate: +1 KB over the next 10 ms.
  EXPECT_DOUBLE_EQ(b.tokens(milliseconds(30)), 21'000.0);
}

TEST(TokenBucketTest, RateChangeForfeitsTokensAboveNewBurst) {
  TokenBucket b(1.0e6, 50'000.0);  // idle: full 50 KB
  b.set_rate(0, 1.0e6, 10'000.0);
  EXPECT_DOUBLE_EQ(b.tokens(0), 10'000.0);
}

// --- NodeShaper ----------------------------------------------------------

TEST(NodeShaperTest, ReleasesQueuedMessagesInFifoOrderAtTheRate) {
  sim::Simulation sim;
  NodeShaper shaper(sim, 0, /*nic_bps=*/1.0e9);
  shaper.set_container_rate(1, 1.0e6);  // burst = max(64 KiB, 10 KB) = 64 KiB

  std::vector<int> order;
  // The fresh lane holds one 64 KiB burst: the first message passes, the
  // next two queue behind the bucket and drain in arrival order.
  EXPECT_FALSE(shaper.shape(false, 1, 65'536, [&] { order.push_back(0); }));
  EXPECT_TRUE(shaper.shape(false, 1, 40'000, [&] { order.push_back(1); }));
  EXPECT_TRUE(shaper.shape(false, 1, 40'000, [&] { order.push_back(2); }));
  EXPECT_EQ(shaper.queued_messages(), 2u);
  sim.run_until(milliseconds(39));
  EXPECT_TRUE(order.empty());  // 40 KB at 1 MB/s needs 40 ms of credit
  sim.run_until(milliseconds(41));
  EXPECT_EQ(order, (std::vector<int>{1}));
  sim.run_until(milliseconds(81));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(shaper.queued_messages(), 0u);
}

TEST(NodeShaperTest, RateRaiseMidFlightReleasesQueuedMessagesEarly) {
  sim::Simulation sim;
  NodeShaper shaper(sim, 0, 1.0e9);
  shaper.set_container_rate(1, 1.0e6);
  sim::TimePoint released = -1;
  EXPECT_FALSE(shaper.shape(false, 1, 65'536, [] {}));  // drain the burst
  EXPECT_TRUE(shaper.shape(false, 1, 50'000, [&] { released = sim.now(); }));
  sim.run_until(milliseconds(10));  // 10 KB of the 50 KB credit accrued
  ASSERT_EQ(released, -1);
  // 10x the rate: the remaining 40 KB of credit arrives in 4 ms, not 40.
  shaper.set_container_rate(1, 10.0e6);
  sim.run_until(milliseconds(20));
  EXPECT_EQ(released, milliseconds(14));
}

TEST(NodeShaperTest, RateCutMidFlightPushesReleaseOut) {
  sim::Simulation sim;
  NodeShaper shaper(sim, 0, 1.0e9);
  shaper.set_container_rate(1, 10.0e6);  // burst = max(64 KiB, 100 KB)
  sim::TimePoint released = -1;
  EXPECT_FALSE(shaper.shape(false, 1, 100'000, [] {}));
  EXPECT_TRUE(shaper.shape(false, 1, 50'000, [&] { released = sim.now(); }));
  shaper.set_container_rate(1, 1.0e6);  // would have released at 5 ms
  sim.run_until(milliseconds(49));
  EXPECT_EQ(released, -1);
  sim.run_until(milliseconds(51));
  EXPECT_EQ(released, milliseconds(50));
}

TEST(NodeShaperTest, NicRootBucketGatesAcrossContainers) {
  sim::Simulation sim;
  // NIC burst = max(64 KiB, 10 KB) = 64 KiB shared by both containers, each
  // of whose own lane holds a fresh full burst.
  NodeShaper shaper(sim, 0, /*nic_bps=*/1.0e6);
  shaper.set_container_rate(1, 1.0e6);
  shaper.set_container_rate(2, 1.0e6);
  sim::TimePoint released = -1;
  EXPECT_FALSE(shaper.shape(false, 1, 60'000, [] {}));
  // Container 2 has private credit, but the NIC root is nearly drained: the
  // message queues behind the *node* bucket, not its own.
  EXPECT_TRUE(shaper.shape(false, 2, 60'000, [&] { released = sim.now(); }));
  sim.run_until(seconds(1));
  // NIC level after the first send: 65'536 - 60'000 = 5'536; the second
  // 60 KB message needs 54'464 bytes more at 1 MB/s ~ 54.5 ms.
  EXPECT_EQ(released, microseconds(54'464));
}

TEST(NodeShaperTest, RemoveContainerReleasesQueueUnshaped) {
  sim::Simulation sim;
  NodeShaper shaper(sim, 0, 1.0e9);
  shaper.set_container_rate(1, 1.0e6);
  std::vector<int> order;
  EXPECT_FALSE(shaper.shape(false, 1, 65'536, [] {}));
  EXPECT_TRUE(shaper.shape(false, 1, 40'000, [&] { order.push_back(1); }));
  EXPECT_TRUE(shaper.shape(false, 1, 40'000, [&] { order.push_back(2); }));
  shaper.remove_container(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // immediate, in order
  EXPECT_EQ(shaper.queued_messages(), 0u);
  EXPECT_EQ(shaper.container_rate(1), 0.0);
}

// --- ClusterShaper telemetry --------------------------------------------

TEST(ClusterShaperTest, SamplerEmitsOnlyShapedContainersInOrder) {
  sim::Simulation sim;
  ClusterShaper shaper(sim);
  shaper.add_node(0, 1.0e9);
  shaper.attach(3, 0);
  shaper.attach(1, 0);
  shaper.attach(2, 0);
  shaper.set_container_rate(1, 1.0e6);
  shaper.set_container_rate(3, 2.0e6);
  // Container 2 stays unshaped (rate 0): no telemetry for it.

  std::vector<BwSample> samples;
  shaper.start_sampler(milliseconds(100),
                       [&](const BwSample& s) { samples.push_back(s); });
  shaper.shape_egress(1, 50'000, [] {});
  sim.run_until(milliseconds(100));
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].container, 1u);  // ascending container order
  EXPECT_EQ(samples[1].container, 3u);
  EXPECT_DOUBLE_EQ(samples[0].rate_bps, 1.0e6);
  EXPECT_DOUBLE_EQ(samples[0].used_bps, 500'000.0);  // 50 KB / 100 ms
  EXPECT_FALSE(samples[0].throttled);
  EXPECT_DOUBLE_EQ(samples[1].used_bps, 0.0);
}

TEST(ClusterShaperTest, SamplerReportsThrottlingAndQueueDepth) {
  sim::Simulation sim;
  ClusterShaper shaper(sim);
  shaper.add_node(0, 1.0e9);
  shaper.attach(1, 0);
  shaper.set_container_rate(1, 1.0e6);
  shaper.shape_egress(1, 65'536, [] {});  // spends the burst
  shaper.shape_egress(1, 60'000, [] {});  // releases at 60 ms
  shaper.shape_egress(1, 60'000, [] {});  // still queued at the 100 ms sample
  std::vector<BwSample> samples;
  shaper.start_sampler(milliseconds(100),
                       [&](const BwSample& s) { samples.push_back(s); });
  sim.run_until(milliseconds(100));
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_TRUE(samples[0].throttled);
  EXPECT_EQ(samples[0].queue_depth, 1u);
}

// --- send_flow integration ----------------------------------------------

TEST(BwNetworkTest, UnattachedContainersPassThroughAtChannelLatency) {
  sim::Simulation sim;
  net::Network network(sim);
  ClusterShaper shaper(sim);
  shaper.add_node(0, 1.0e9);
  shaper.attach(1, 0);
  shaper.set_container_rate(1, 1.0e6);
  network.set_shaper(&shaper);

  sim::TimePoint unshaped_at = -1;
  // Container 2 is unattached: pure channel latency even with big payloads.
  network.send_flow(net::Channel::kAppData, 0, 1, 2, 0, 10'000'000,
                    [&] { unshaped_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(unshaped_at, microseconds(80));  // telemetry-class latency
}

TEST(BwNetworkTest, EgressQueueDelaysDeliveryByCreditWait) {
  sim::Simulation sim;
  net::Network network(sim);
  ClusterShaper shaper(sim);
  shaper.add_node(0, 1.0e9);
  shaper.attach(1, 0);
  shaper.set_container_rate(1, 1.0e6);
  network.set_shaper(&shaper);

  sim::TimePoint first = -1, second = -1;
  network.send_flow(net::Channel::kAppData, 0, 1, 1, 0, 65'536,
                    [&] { first = sim.now(); });
  network.send_flow(net::Channel::kAppData, 0, 1, 1, 0, 50'000,
                    [&] { second = sim.now(); });
  sim.run_all();
  EXPECT_EQ(first, microseconds(80));
  // 50 KB of credit at 1 MB/s = 50 ms in the egress queue, then the wire.
  EXPECT_EQ(second, milliseconds(50) + microseconds(80));
}

// --- Escra end to end: saturation-driven grants --------------------------

TEST(BwEscraTest, SaturationDrivesGrantsAndReclaimFundsThem) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  cluster::Node& node = k8s.add_node(
      cluster::NodeConfig{.cores = 8.0, .nic_bps = 12.5e6});
  bw::ClusterShaper shaper(sim);
  shaper.add_node(node.id(), 12.5e6);
  network.set_shaper(&shaper);

  core::EscraConfig cfg;
  cfg.bw_gamma = 1.0e6;  // reclaim at MB/s scale for this small pool
  core::EscraSystem escra(sim, network, k8s, 8.0, 4LL * memcg::kGiB, cfg);
  obs::Observer observer;
  escra.attach_observer(observer);
  shaper.set_observer(&observer);
  escra.enable_bandwidth(shaper, /*global_bw_bps=*/10.0e6);

  cluster::ContainerSpec spec;
  spec.name = "hot";
  spec.base_memory = 16 * memcg::kMiB;
  cluster::Container& hot = k8s.create_container(spec, 1.0, 64 * memcg::kMiB);
  spec.name = "cold";
  cluster::Container& cold = k8s.create_container(spec, 1.0, 64 * memcg::kMiB);
  escra.manage({&hot, &cold});
  escra.start();

  // Equal bootstrap split of the 10 MB/s pool.
  EXPECT_DOUBLE_EQ(escra.app().member_bw(hot.id()), 5.0e6);
  EXPECT_DOUBLE_EQ(escra.app().member_bw(cold.id()), 5.0e6);

  // The hot container pushes ~9 MB/s against its 5 MB/s share; the cold one
  // stays idle. The allocator should reclaim the cold share and re-grant it.
  const std::uint32_t hot_id = hot.id();
  sim.schedule_every(milliseconds(1), milliseconds(1), [&] {
    network.send_flow(net::Channel::kAppData, 0, 0, hot_id, 0, 9'000, [] {});
  });
  sim.run_until(seconds(5));

  EXPECT_GT(observer.h.bw_grants->value(), 0u);
  EXPECT_GT(observer.h.bw_shrinks->value(), 0u);
  EXPECT_GT(observer.h.bw_throttle_events->value(), 0u);
  EXPECT_GT(escra.app().member_bw(hot.id()), 7.0e6);
  EXPECT_LT(escra.app().member_bw(cold.id()), 3.0e6);
  EXPECT_GE(escra.app().member_bw(cold.id()), cfg.bw_min_rate);
  // The applied shaper rate converged to the granted rate.
  EXPECT_DOUBLE_EQ(shaper.container_rate(hot.id()),
                   escra.app().member_bw(hot.id()));
}

// --- determinism across sweep worker counts ------------------------------

// One self-contained shaped scenario; returns a release-schedule trace.
// Byte-identical output across repeats and thread counts is the contract
// that makes --jobs N sweeps reproducible.
std::string release_trace(std::uint64_t seed) {
  sim::Simulation sim;
  ClusterShaper shaper(sim);
  shaper.add_node(0, 2.0e6);
  shaper.add_node(1, 2.0e6);
  for (std::uint32_t c = 1; c <= 4; ++c) {
    shaper.attach(c, c % 2);
    shaper.set_container_rate(c, 0.4e6 + 0.2e6 * c);
  }
  std::string trace;
  sim::Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t c = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    const std::size_t bytes =
        static_cast<std::size_t>(rng.uniform_int(1'000, 90'000));
    const bool ingress = rng.chance(0.5);
    sim.schedule_at(
        static_cast<sim::TimePoint>(rng.uniform_int(0, 500'000)),
        [&shaper, &sim, &trace, c, bytes, ingress] {
          const auto log = [&trace, &sim, c] {
            trace +=
                std::to_string(sim.now()) + ":c" + std::to_string(c) + "\n";
          };
          const bool queued = ingress ? shaper.shape_ingress(c, bytes, log)
                                      : shaper.shape_egress(c, bytes, log);
          if (!queued) log();
        });
  }
  sim.run_all();
  return trace;
}

TEST(BwDeterminismTest, ReleaseScheduleIsByteIdenticalAcrossJobs) {
  const std::string reference = release_trace(42);
  ASSERT_FALSE(reference.empty());
  for (const int jobs : {1, 4}) {
    const std::vector<std::string> traces =
        sweep::parallel_map<std::string>(8, jobs,
                                         [](std::size_t) { return release_trace(42); });
    for (const std::string& t : traces) EXPECT_EQ(t, reference);
  }
  // Different seeds genuinely differ (the trace is not degenerate).
  EXPECT_NE(release_trace(43), reference);
}

}  // namespace
}  // namespace escra::bw
