// InvariantChecker integration tests: a clean run reports no violations, a
// planted over-commit or bogus decision event is caught with the right rule
// name, and attachment/detachment honours the obs hook contract.
#include "check/invariant_checker.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "app/benchmarks.h"
#include "check/shard_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/sharded_control_plane.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

namespace escra::check {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  std::unique_ptr<app::Application> application;
  std::unique_ptr<core::EscraSystem> escra;

  explicit Rig(bool attach = true) {
    for (int i = 0; i < 3; ++i) k8s.add_node({});
    application = std::make_unique<app::Application>(
        k8s, app::make_teastore(), sim::Rng(7), 1.0, 512 * kMiB);
    escra = std::make_unique<core::EscraSystem>(sim, net, k8s, 12.0, 8 * kGiB);
    if (attach) escra->attach_observer(observer);
    escra->manage(application->containers());
    escra->start();
  }

  void drive(workload::LoadGenerator& gen, sim::TimePoint until) {
    gen.run(seconds(1), until - seconds(2));
    sim.run_until(until);
  }
};

bool has_rule(const InvariantChecker& checker, const std::string& rule) {
  for (const Violation& v : checker.violations()) {
    if (v.rule == rule) return true;
  }
  return false;
}

bool has_rule(const ShardInvariantChecker& checker, const std::string& rule) {
  for (const Violation& v : checker.violations()) {
    if (v.rule == rule) return true;
  }
  return false;
}

// Minimal sharded rig for the cross-shard conservation rules.
struct ShardRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::optional<shard::ShardedControlPlane> plane;

  ShardRig() {
    for (int i = 0; i < 2; ++i) k8s.add_node({});
    shard::ShardPlaneConfig pcfg;
    pcfg.shards = 2;
    plane.emplace(sim, net, k8s, 8.0, memcg::Bytes{4} * kGiB, pcfg);
    for (int a = 0; a < 4; ++a) {
      core::AppSpec spec;
      spec.name = "app" + std::to_string(a);
      for (int c = 0; c < 2; ++c) {
        cluster::ContainerSpec cs;
        cs.name = spec.name + "/c" + std::to_string(c);
        spec.containers.push_back(std::move(cs));
      }
      plane->deploy(spec);
    }
    plane->start();
  }
};

TEST(InvariantCheckerTest, CleanRunHasNoViolations) {
  Rig rig;
  InvariantChecker checker(*rig.escra, rig.net, rig.observer);
  workload::LoadGenerator gen(
      rig.sim, std::make_unique<workload::ExpArrivals>(200.0, sim::Rng(3)),
      [&](workload::LoadGenerator::Done done) {
        rig.application->submit_request(std::move(done));
      });
  rig.drive(gen, seconds(10));
  checker.check_now();
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_checked(), 0u);
  EXPECT_GT(checker.sweeps(), 50u);  // one per 100 ms CFS period
  EXPECT_EQ(checker.report().rfind("invariants ok", 0), 0u);
}

TEST(InvariantCheckerTest, RequiresAttachedObserver) {
  Rig rig(/*attach=*/false);
  EXPECT_THROW(InvariantChecker(*rig.escra, rig.net, rig.observer),
               std::invalid_argument);
}

TEST(InvariantCheckerTest, RejectsNonPositiveSweepInterval) {
  Rig rig;
  InvariantChecker::Config config;
  config.sweep_interval = 0;
  EXPECT_THROW(InvariantChecker(*rig.escra, rig.net, rig.observer, config),
               std::invalid_argument);
}

TEST(InvariantCheckerTest, CatchesPlantedCpuOverCommit) {
  Rig rig;
  InvariantChecker checker(*rig.escra, rig.net, rig.observer);
  // Write a limit straight into a cgroup, bypassing the allocator — the
  // over-commit Escra must never produce. Planted mid-period so the next
  // boundary sweep sees it before any corrective RPC.
  rig.sim.schedule_at(seconds(2) + milliseconds(50), [&] {
    cluster::Container* victim = rig.k8s.containers().front();
    victim->cpu_cgroup().set_limit_cores(rig.escra->app().cpu_limit() * 2.0);
  });
  rig.sim.run_until(seconds(3));
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(has_rule(checker, "cpu-conservation")) << checker.report();
}

TEST(InvariantCheckerTest, CatchesUndersizedOomGrant) {
  Rig rig;
  rig.sim.run_until(seconds(1));
  InvariantChecker checker(*rig.escra, rig.net, rig.observer);
  // A grant smaller than the reported shortfall means the retried charge
  // still overflows: the exact "post-grant OOM kill" the rule exists for.
  obs::TraceEvent ev;
  ev.time = rig.sim.now();
  ev.kind = obs::EventKind::kMemGrantOnOom;
  ev.container = 42;
  ev.before = 100.0 * kMiB;
  ev.after = 101.0 * kMiB;
  ev.detail = 8 * kMiB;
  rig.observer.record(ev);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(has_rule(checker, "mem-grant-covers")) << checker.report();
}

TEST(InvariantCheckerTest, CatchesStaleEventTime) {
  Rig rig;
  rig.sim.run_until(seconds(1));
  InvariantChecker checker(*rig.escra, rig.net, rig.observer);
  obs::TraceEvent ev;
  ev.time = rig.sim.now() - milliseconds(10);
  ev.kind = obs::EventKind::kThrottleObserved;
  ev.container = 1;
  rig.observer.record(ev);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(has_rule(checker, "trace-time-monotonic")) << checker.report();
}

TEST(InvariantCheckerTest, DetachesOnDestruction) {
  Rig rig;
  {
    InvariantChecker checker(*rig.escra, rig.net, rig.observer);
    rig.sim.run_until(seconds(1));
  }
  // Hook removed, sweep cancelled: the system keeps running and recording
  // without a live checker.
  rig.sim.run_until(seconds(2));
  obs::TraceEvent ev;
  ev.time = rig.sim.now();
  ev.kind = obs::EventKind::kThrottleObserved;
  rig.observer.record(ev);  // would crash or mis-count with a stale hook
  SUCCEED();
}

TEST(InvariantCheckerTest, PlantedViolationReplaysIdentically) {
  const auto run = [] {
    Rig rig;
    InvariantChecker checker(*rig.escra, rig.net, rig.observer);
    workload::LoadGenerator gen(
        rig.sim, std::make_unique<workload::ExpArrivals>(150.0, sim::Rng(9)),
        [&](workload::LoadGenerator::Done done) {
          rig.application->submit_request(std::move(done));
        });
    rig.sim.schedule_at(seconds(2) + milliseconds(50), [&] {
      rig.k8s.containers().front()->cpu_cgroup().set_limit_cores(40.0);
    });
    rig.drive(gen, seconds(4));
    checker.check_now();
    return checker.report();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.rfind("invariants ok", 0), 0u);
  EXPECT_EQ(first, second);
}

// --- cross-shard conservation ---------------------------------------------

TEST(ShardInvariantCheckerTest, CleanShardedRunHasNoViolations) {
  ShardRig rig;
  ShardInvariantChecker checker(*rig.plane);
  rig.sim.run_until(seconds(3));
  EXPECT_GT(checker.sweeps(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(checker.report(), "ok");
}

TEST(ShardInvariantCheckerTest, CatchesUnledgeredSliceShrink) {
  ShardRig rig;
  ShardInvariantChecker checker(*rig.plane);
  rig.sim.run_until(seconds(1));
  // Shrink shard 0's memory slice without the borrow ledger knowing — the
  // bytes vanish from the cluster pool. Eq. 2 withholds sigma = 20%, so one
  // MiB is safely above the slice's allocated sum.
  core::DistributedContainer& app = rig.plane->shard(0).app();
  app.set_mem_limit(app.mem_limit() - memcg::Bytes{1} * kMiB);
  checker.check_now();
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(has_rule(checker, "shard-mem-conservation")) << checker.report();
}

TEST(ShardInvariantCheckerTest, CatchesUnledgeredCpuRaise) {
  ShardRig rig;
  ShardInvariantChecker checker(*rig.plane);
  rig.sim.run_until(seconds(1));
  // A conjured core: shard 1's slice grows with no matching shrink or
  // in-flight transfer anywhere.
  core::DistributedContainer& app = rig.plane->shard(1).app();
  app.set_cpu_limit(app.cpu_limit() + 1.0);
  checker.check_now();
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(has_rule(checker, "shard-cpu-conservation")) << checker.report();
}

}  // namespace
}  // namespace escra::check
