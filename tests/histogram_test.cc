#include "sim/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.h"

namespace escra::sim {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValueExactlyRecoverable) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(50), 42);
  EXPECT_EQ(h.percentile(100), 42);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below 2^precision_bits land in unit-width buckets.
  Histogram h(1000000, 7);
  for (std::int64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.percentile(1), 1);
  EXPECT_EQ(h.percentile(50), 50);
  EXPECT_EQ(h.percentile(100), 100);
}

TEST(HistogramTest, BoundedRelativeError) {
  Histogram h(3'600'000'000LL, 7);
  Rng rng(3);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.uniform(1.0, 1e9)));
    h.record(values.back());
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto idx = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(values.size() - 1));
    const double exact = static_cast<double>(values[idx]);
    const double approx = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(approx / exact, 1.0, 0.02) << "p=" << p;
  }
}

TEST(HistogramTest, MeanIsExactRegardlessOfBuckets) {
  Histogram h;
  h.record(100);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(HistogramTest, ClampsOutOfRangeValues) {
  Histogram h(1000, 7);
  h.record(0);       // below 1
  h.record(-50);     // negative
  h.record(999999);  // above max
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
}

TEST(HistogramTest, RecordNCountsWeight) {
  Histogram h;
  h.record_n(10, 99);
  h.record_n(1000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 10);
  EXPECT_GT(h.percentile(99.9), 500);
}

TEST(HistogramTest, CdfAtIsMonotone) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    h.record(static_cast<std::int64_t>(rng.exponential(1e-5)));
  }
  double prev = 0.0;
  for (std::int64_t v = 1; v < 1000000; v *= 3) {
    const double c = h.cdf_at(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(3'600'000'000LL), 1.0);
}

TEST(HistogramTest, MergeCombinesDistributions) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_EQ(a.percentile(25), 10);
  EXPECT_GT(a.percentile(75), 500);
}

TEST(HistogramTest, MergeGeometryMismatchThrows) {
  Histogram a(1000, 7);
  Histogram b(1000000, 7);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0, 7), std::invalid_argument);
  EXPECT_THROW(Histogram(1000, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1000, 20), std::invalid_argument);
}

class HistogramPercentileTest : public ::testing::TestWithParam<double> {};

// Percentile queries must bracket the true order statistic for a known
// deterministic series across the whole percentile range.
TEST_P(HistogramPercentileTest, BracketsTrueOrderStatistic) {
  Histogram h;
  std::vector<std::int64_t> values;
  for (std::int64_t v = 1; v <= 10000; ++v) {
    values.push_back(v * 17);  // spread across bucket magnitudes
    h.record(v * 17);
  }
  const double p = GetParam();
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1));
  const double exact = static_cast<double>(values[idx]);
  const double approx = static_cast<double>(h.percentile(p));
  EXPECT_NEAR(approx / exact, 1.0, 0.02) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Range, HistogramPercentileTest,
                         ::testing::Values(1.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           99.0, 99.9, 100.0));

}  // namespace
}  // namespace escra::sim
