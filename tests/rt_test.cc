// The mixed-criticality real-time container class: the RtSpec contract, the
// node-side deadline-scheduler model (periodic jobs, RT-first scheduling
// tier, miss detection), controller admission control (node / pool / NIC
// utilization bounds), the never-reclaim floor through κ-damping and greedy
// pressure, explicit-eviction-only revocation, and reservation recovery
// across controller crash/resync, HA takeover, and sharded deployments.
#include "cfs/rt.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bw/shaper.h"
#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/sharded_control_plane.h"

namespace escra {
namespace {

using core::Controller;
using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

cfs::RtSpec spec_ms(int runtime, int deadline, int period) {
  return {milliseconds(runtime), milliseconds(deadline),
          milliseconds(period)};
}

// --- RtSpec contract ----------------------------------------------------

TEST(RtSpecTest, ValidityRequiresTheSchedDeadlineShape) {
  EXPECT_TRUE(spec_ms(20, 50, 100).valid());
  EXPECT_TRUE(spec_ms(20, 100, 100).valid());  // implicit deadline
  EXPECT_TRUE(spec_ms(50, 50, 50).valid());    // full utilization
  EXPECT_FALSE(spec_ms(0, 50, 100).valid());   // no runtime
  EXPECT_FALSE(spec_ms(60, 50, 100).valid());  // runtime > deadline
  EXPECT_FALSE(spec_ms(20, 200, 100).valid());  // unconstrained deadline
  EXPECT_FALSE(cfs::RtSpec{}.valid());
}

TEST(RtSpecTest, FloorIsTheDensityBound) {
  // Constrained deadline: the denser runtime/deadline rate.
  EXPECT_DOUBLE_EQ(spec_ms(20, 50, 100).floor_cores(), 0.4);
  // Implicit deadline: plain utilization runtime/period.
  EXPECT_DOUBLE_EQ(spec_ms(30, 100, 100).floor_cores(), 0.3);
  EXPECT_DOUBLE_EQ(spec_ms(100, 100, 100).floor_cores(), 1.0);
}

// --- node-side deadline model (no controller) ---------------------------

TEST(ContainerRtTest, PeriodicJobsCompleteWithAmpleQuota) {
  sim::Simulation sim;
  cluster::Cluster k8s(sim);
  k8s.add_node({.cores = 4.0});
  cluster::ContainerSpec spec;
  spec.name = "rt";
  spec.base_memory = 16 * kMiB;
  cluster::Container& c = k8s.create_container(spec, 2.0, 64 * kMiB);

  c.set_rt(spec_ms(20, 50, 100));
  sim.run_until(seconds(2));
  // One job released immediately plus one per period, every one done
  // inside its deadline (the t=2s release has not reached its deadline).
  EXPECT_EQ(c.rt_jobs_released(), 21u);
  EXPECT_GE(c.rt_jobs_completed(), 20u);
  EXPECT_EQ(c.deadline_misses(), 0u);
}

TEST(ContainerRtTest, StarvedQuotaMissesOncePerJobWithoutCascading) {
  sim::Simulation sim;
  cluster::Cluster k8s(sim);
  k8s.add_node({.cores = 4.0});
  cluster::ContainerSpec spec;
  spec.name = "rt";
  spec.base_memory = 16 * kMiB;
  // 0.05 cores against a 0.4-core reservation: every job blows through its
  // deadline with most of its runtime still owed.
  cluster::Container& c = k8s.create_container(spec, 0.05, 64 * kMiB);

  sim::Duration last_remaining = 0;
  int observed = 0;
  c.set_deadline_miss_observer([&](sim::Duration remaining) {
    last_remaining = remaining;
    ++observed;
  });
  c.set_rt(spec_ms(20, 50, 100));
  sim.run_until(seconds(2));

  EXPECT_GT(c.deadline_misses(), 10u);
  // Late jobs are abandoned at the deadline: one miss per release, and the
  // owed core-time never exceeds a single job's runtime.
  EXPECT_LE(c.deadline_misses(), c.rt_jobs_released());
  EXPECT_EQ(static_cast<std::uint64_t>(observed), c.deadline_misses());
  EXPECT_GT(last_remaining, 0);
  EXPECT_LE(last_remaining, milliseconds(20));
}

TEST(ContainerRtTest, RtTierHoldsDeadlinesThroughBestEffortFlood) {
  sim::Simulation sim;
  cluster::Cluster k8s(sim);
  cluster::Node& node = k8s.add_node({.cores = 2.0});
  cluster::ContainerSpec spec;
  spec.base_memory = 16 * kMiB;
  spec.name = "rt";
  cluster::Container& rt = k8s.create_container(spec, 1.0, 64 * kMiB, &node);
  spec.name = "hog";
  spec.max_parallelism = 8.0;
  cluster::Container& hog = k8s.create_container(spec, 8.0, 64 * kMiB, &node);

  rt.set_rt(spec_ms(20, 50, 100));
  // The hog demands 4x the node alone; the scheduler's RT-first tier must
  // still water-fill the reservation before best effort shares the rest.
  sim.schedule_every(milliseconds(1), milliseconds(5), [&] {
    hog.submit(milliseconds(40), 0, nullptr);
  });
  sim.run_until(seconds(2));

  EXPECT_EQ(rt.deadline_misses(), 0u);
  EXPECT_GE(rt.rt_jobs_completed(), 19u);
}

// --- controller admission control ---------------------------------------

struct RtRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  std::vector<cluster::Container*> containers;
  core::EscraSystem escra;

  explicit RtRig(int n = 4, double pool_cores = 8.0, double node_cores = 20.0,
                 core::EscraConfig cfg = {})
      : escra(sim, net, k8s, pool_cores, 4 * kGiB, cfg) {
    cluster::Node& node = k8s.add_node({.cores = node_cores});
    k8s.add_node({.cores = node_cores});
    cluster::ContainerSpec spec;
    spec.base_memory = 64 * kMiB;
    spec.max_parallelism = 8.0;
    for (int i = 0; i < n; ++i) {
      spec.name = "c" + std::to_string(i);
      // Everything pinned to node 0: admission bounds are deterministic.
      containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB, &node));
    }
    escra.attach_observer(observer);
    escra.manage(containers);
    escra.start();
  }

  void drive_hot(cluster::Container* c, sim::TimePoint until) {
    sim::Simulation* simp = &sim;
    sim.schedule_every(milliseconds(1), milliseconds(10), [c, simp, until] {
      if (simp->now() >= until) return;
      c->submit(milliseconds(40), 0, nullptr);
    });
  }
};

TEST(RtAdmissionTest, StateRejectionsCoverTheWholeLifecycle) {
  RtRig rig;
  Controller& ctl = rig.escra.controller();
  const cluster::ContainerId id = rig.containers[0]->id();

  // Unknown container / invalid spec / negative rate all reject on state.
  EXPECT_EQ(ctl.admit_rt(9999, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kRejectedState);
  EXPECT_EQ(ctl.admit_rt(id, spec_ms(60, 50, 100)),
            Controller::RtAdmit::kRejectedState);
  EXPECT_EQ(ctl.admit_rt(id, spec_ms(20, 50, 100), -1.0),
            Controller::RtAdmit::kRejectedState);

  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_TRUE(ctl.rt_admitted(id));
  EXPECT_DOUBLE_EQ(ctl.rt_floor_of(id), 0.4);
  EXPECT_DOUBLE_EQ(ctl.rt_reserved_cores(), 0.4);

  // Double admission rejects; the reservation is unchanged.
  EXPECT_EQ(ctl.admit_rt(id, spec_ms(10, 100, 100)),
            Controller::RtAdmit::kRejectedState);
  EXPECT_DOUBLE_EQ(ctl.rt_reserved_cores(), 0.4);

  // A crashed controller admits nothing.
  rig.escra.crash();
  EXPECT_EQ(ctl.admit_rt(rig.containers[1]->id(), spec_ms(20, 50, 100)),
            Controller::RtAdmit::kRejectedState);

  EXPECT_EQ(ctl.rt_admissions(), 1u);
  EXPECT_EQ(ctl.rt_rejections(), 5u);
  EXPECT_EQ(rig.observer.h.rt_rejected->value(), 5u);
}

TEST(RtAdmissionTest, NodeUtilizationBoundCapsPerNodeDensity) {
  // Node bound: 0.7 x 4 cores = 2.8 reservable cores on node 0; the pool
  // (0.7 x 16 = 11.2) is not the binding constraint.
  RtRig rig(/*n=*/4, /*pool_cores=*/16.0, /*node_cores=*/4.0);
  Controller& ctl = rig.escra.controller();

  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(100, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[1], spec_ms(100, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[2], spec_ms(100, 100, 100)),
            Controller::RtAdmit::kRejectedNode)
      << "3.0 admitted cores would breach the 2.8-core node bound";
  // A smaller reservation still fits under the bound.
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[2], spec_ms(50, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_DOUBLE_EQ(ctl.rt_reserved_cores(), 2.5);
}

TEST(RtAdmissionTest, PoolBoundIsTheGlobalLimitNotTheNode) {
  // Pool bound: 0.7 x 2 cores = 1.4; node 0 alone could hold 0.7 x 20 = 14.
  RtRig rig(/*n=*/3, /*pool_cores=*/2.0);
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(100, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[1], spec_ms(50, 100, 100)),
            Controller::RtAdmit::kRejectedPool)
      << "1.5 reserved cores would breach the 1.4-core pool bound";
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[1], spec_ms(30, 100, 100)),
            Controller::RtAdmit::kAdmitted);
}

TEST(RtAdmissionTest, BandwidthArmBoundsAgainstTheNic) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  cluster::Node& node =
      k8s.add_node(cluster::NodeConfig{.cores = 8.0, .nic_bps = 10.0e6});
  bw::ClusterShaper shaper(sim);
  shaper.add_node(node.id(), 10.0e6);
  network.set_shaper(&shaper);
  core::EscraSystem escra(sim, network, k8s, 8.0, 4LL * kGiB);
  obs::Observer observer;
  escra.attach_observer(observer);
  shaper.set_observer(&observer);
  escra.enable_bandwidth(shaper, /*global_bw_bps=*/10.0e6);

  cluster::ContainerSpec spec;
  spec.base_memory = 16 * kMiB;
  spec.name = "a";
  cluster::Container& a = k8s.create_container(spec, 1.0, 64 * kMiB);
  spec.name = "b";
  cluster::Container& b = k8s.create_container(spec, 1.0, 64 * kMiB);
  escra.manage({&a, &b});
  escra.start();

  // NIC arm: 0.5 x 10 MB/s = 5 MB/s reservable on the node.
  EXPECT_EQ(escra.admit_rt(a, spec_ms(20, 100, 100), 4.0e6),
            Controller::RtAdmit::kAdmitted);
  EXPECT_EQ(escra.admit_rt(b, spec_ms(20, 100, 100), 1.5e6),
            Controller::RtAdmit::kRejectedBw)
      << "5.5 MB/s reserved would breach the 5 MB/s NIC bound";
  EXPECT_EQ(escra.admit_rt(b, spec_ms(20, 100, 100), 0.5e6),
            Controller::RtAdmit::kAdmitted);
}

TEST(RtAdmissionTest, BandwidthReservationNeedsTheBwPlane) {
  RtRig rig;  // bandwidth never enabled: no shaper, no NIC budget
  EXPECT_EQ(rig.escra.controller().admit_rt(rig.containers[0]->id(),
                                            spec_ms(20, 100, 100), 1.0e6),
            Controller::RtAdmit::kRejectedBw);
  // The same admission without a rate reservation is fine.
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(20, 100, 100)),
            Controller::RtAdmit::kAdmitted);
}

// --- never-reclaim floor -------------------------------------------------

TEST(RtFloorTest, AdmissionShedsBestEffortToFundTheFloor)  {
  RtRig rig(/*n=*/4, /*pool_cores=*/4.0);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  // Containers 1..3 run hot and absorb the pool; container 0 idles, so
  // κ-damping bleeds its share toward min_cores and the unallocated pool
  // cannot cover a 1-core floor on its own.
  for (int i = 1; i < 4; ++i) rig.drive_hot(rig.containers[i], seconds(5));
  rig.sim.run_until(seconds(5));
  ASSERT_LT(rig.escra.app().member_cores(rig.containers[0]->id()) +
                rig.escra.app().cpu_unallocated(),
            1.0)
      << "the idle member + free pool must not cover the floor, or the "
         "shed path is not exercised";

  const std::uint64_t shrinks_before = rig.observer.h.cpu_shrinks->value();
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(100, 200, 100)),
            Controller::RtAdmit::kRejectedState)
      << "unconstrained deadline: invalid spec";
  ASSERT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(50, 50, 100)),
            Controller::RtAdmit::kAdmitted);

  // The floor holds from the instant of admission, funded by shrinking
  // best-effort members (graceful degradation: best effort sheds first).
  EXPECT_GE(rig.escra.app().member_cores(rig.containers[0]->id()),
            1.0 - 1e-6);
  EXPECT_GT(rig.observer.h.cpu_shrinks->value(), shrinks_before);
  rig.sim.run_until(seconds(6));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(RtFloorTest, KappaAndGreedyDecayNeverReclaimBelowTheFloor) {
  core::EscraConfig cfg;
  cfg.credit_defense = true;  // arm the Karma throttle path too
  RtRig rig(/*n=*/4, /*pool_cores=*/8.0, /*node_cores=*/20.0, cfg);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  checker.attach_credits(rig.escra.controller().credits());

  cluster::Container* rt = rig.containers[0];
  ASSERT_EQ(rig.escra.admit_rt(*rt, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  const double floor = 0.4;

  // The RT container runs nothing but its periodic jobs — κ-damping sees a
  // nearly idle tenant and would normally bleed it to min_cores — while
  // every best-effort peer floods the node and the credit defense decays
  // overclaimers. 60 s of sustained adversarial pressure.
  for (int i = 1; i < 4; ++i) rig.drive_hot(rig.containers[i], seconds(60));
  const std::uint32_t rt_id = rt->id();
  double min_seen = 1e9;
  rig.sim.schedule_every(milliseconds(100), milliseconds(100), [&] {
    min_seen = std::min(min_seen, rig.escra.app().member_cores(rt_id));
  });
  rig.sim.run_until(seconds(60));

  EXPECT_GE(min_seen, floor - 1e-6)
      << "an allocator decision reclaimed the admitted floor";
  EXPECT_EQ(rt->deadline_misses(), 0u);
  EXPECT_GE(rt->rt_jobs_completed(), 595u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- explicit eviction, crash/resync, takeover ---------------------------

TEST(RtLifecycleTest, ReleaseEvictsExplicitlyBeforeTheKill) {
  RtRig rig;
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  cluster::Container* rt = rig.containers[0];
  ASSERT_EQ(rig.escra.admit_rt(*rt, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  rig.sim.run_until(seconds(2));

  rig.escra.release(*rt);
  EXPECT_FALSE(rig.escra.rt_admitted(rt->id()));
  EXPECT_DOUBLE_EQ(rig.escra.rt_reserved_cores(), 0.0);
  EXPECT_EQ(rig.observer.h.rt_evicted->value(), 1u);
  EXPECT_FALSE(rt->rt().valid()) << "the node-side deadline model is torn down";

  // The kRtEvicted decision (reason 0: released) precedes the kill record.
  const obs::TraceBuffer& trace = rig.observer.trace();
  bool saw_evict = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    if (ev.kind == obs::EventKind::kRtEvicted) {
      saw_evict = true;
      EXPECT_EQ(ev.detail, 0);
      EXPECT_DOUBLE_EQ(ev.before, 0.4);
    }
    if (ev.kind == obs::EventKind::kContainerKilled &&
        ev.container == rt->id()) {
      EXPECT_TRUE(saw_evict) << "kill recorded before the eviction decision";
    }
  }
  EXPECT_TRUE(saw_evict);
  rig.sim.run_until(seconds(3));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(RtLifecycleTest, OperatorEvictionTearsDownAndFreesHeadroom) {
  RtRig rig(/*n=*/2, /*pool_cores=*/2.0);
  ASSERT_EQ(rig.escra.admit_rt(*rig.containers[0], spec_ms(100, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  ASSERT_EQ(rig.escra.admit_rt(*rig.containers[1], spec_ms(50, 100, 100)),
            Controller::RtAdmit::kRejectedPool);
  EXPECT_TRUE(rig.escra.evict_rt(*rig.containers[0]));  // reason 2: operator
  EXPECT_FALSE(rig.escra.evict_rt(*rig.containers[0])) << "already evicted";
  // The freed headroom is immediately admittable again.
  EXPECT_EQ(rig.escra.admit_rt(*rig.containers[1], spec_ms(50, 100, 100)),
            Controller::RtAdmit::kAdmitted);
}

TEST(RtLifecycleTest, CrashResyncRederivesTheReservationExactlyOnce) {
  RtRig rig;
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  cluster::Container* rt = rig.containers[0];
  ASSERT_EQ(rig.escra.admit_rt(*rt, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  rig.sim.run_until(seconds(2));
  ASSERT_EQ(rig.observer.h.rt_admitted->value(), 1u);

  rig.escra.crash();
  // Soft state is gone; the node-side deadline model keeps running.
  EXPECT_FALSE(rig.escra.rt_admitted(rt->id()));
  EXPECT_TRUE(rt->rt().valid());
  rig.sim.run_until(seconds(3));
  rig.escra.restart();
  rig.sim.run_until(seconds(6));

  // Resync re-derived the reservation from the container's own RT state —
  // no second admission event (exactly-once), same floor, floor enforced.
  EXPECT_TRUE(rig.escra.rt_admitted(rt->id()));
  EXPECT_DOUBLE_EQ(rig.escra.controller().rt_floor_of(rt->id()), 0.4);
  EXPECT_EQ(rig.observer.h.rt_admitted->value(), 1u);
  EXPECT_GE(rig.escra.app().member_cores(rt->id()), 0.4 - 1e-6);
  EXPECT_EQ(rt->deadline_misses(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(RtLifecycleTest, DeadNodeQuarantineRevokesExplicitlyAndFailsStatic) {
  RtRig rig;
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  cluster::Container* rt = rig.containers[0];
  ASSERT_EQ(rig.escra.admit_rt(*rt, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  rig.sim.run_until(seconds(2));

  // Node 0 (all containers) falls off the network for good.
  rig.net.partition(0, net::kControllerEndpoint);
  rig.sim.run_until(seconds(10));

  ASSERT_TRUE(rig.escra.controller().node_dead(0));
  EXPECT_FALSE(rig.escra.rt_admitted(rt->id()));
  EXPECT_DOUBLE_EQ(rig.escra.rt_reserved_cores(), 0.0);
  // Revocation was explicit (reason 1: dead node), never silent.
  const obs::TraceBuffer& trace = rig.observer.trace();
  bool saw_evict = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    if (ev.kind == obs::EventKind::kRtEvicted && ev.container == rt->id()) {
      saw_evict = true;
      EXPECT_EQ(ev.detail, 1);
    }
  }
  EXPECT_TRUE(saw_evict);
  // Fail static: the unreachable node keeps running the deadline model with
  // its last applied limits, so the reservation is still honored locally.
  EXPECT_TRUE(rt->rt().valid());
  EXPECT_EQ(rt->deadline_misses(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(RtHaTest, TakeoverRebuildsTheAdmittedSetExactlyOnce) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  core::EscraSystem escra(sim, net, k8s, 8.0, 4 * kGiB);
  obs::Observer observer;
  std::vector<cluster::Container*> containers;
  k8s.add_node({});
  k8s.add_node({});
  cluster::ContainerSpec spec;
  spec.base_memory = 64 * kMiB;
  spec.max_parallelism = 8.0;
  for (int i = 0; i < 4; ++i) {
    spec.name = "c" + std::to_string(i);
    containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB));
  }
  escra.attach_observer(observer);
  escra.manage(containers);
  escra.start();
  ha::HaConfig hcfg;
  hcfg.standbys = 2;
  ha::HaControlPlane ha(escra, net, hcfg);
  ha.start();
  check::InvariantChecker checker(escra, net, observer);

  sim.run_until(seconds(1));
  ASSERT_EQ(escra.admit_rt(*containers[0], spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  ASSERT_EQ(escra.admit_rt(*containers[1], spec_ms(30, 100, 100), 0.0),
            Controller::RtAdmit::kAdmitted);
  sim.run_until(seconds(2));

  // The reservations rode the WAL: every standby's replica carries them.
  ASSERT_EQ(ha.standby_replica(0).rt.size(), 2u);
  EXPECT_EQ(ha.standby_replica(0).rt.at(containers[0]->id()).runtime,
            milliseconds(20));

  sim.schedule_at(seconds(2) + milliseconds(1), [&] { ha.kill_leader(); });
  sim.run_until(seconds(4));

  ASSERT_EQ(ha.failovers(), 1u);
  ASSERT_FALSE(escra.crashed());
  // The new leader rebuilt the admitted set from the replica, exactly-once:
  // both reservations live, no new admission events, floors enforced.
  EXPECT_TRUE(escra.rt_admitted(containers[0]->id()));
  EXPECT_TRUE(escra.rt_admitted(containers[1]->id()));
  EXPECT_DOUBLE_EQ(escra.rt_reserved_cores(), 0.7);
  EXPECT_EQ(observer.h.rt_admitted->value(), 2u);
  EXPECT_GE(escra.app().member_cores(containers[0]->id()), 0.4 - 1e-6);

  sim.run_until(seconds(8));
  EXPECT_EQ(containers[0]->deadline_misses(), 0u);
  EXPECT_EQ(containers[1]->deadline_misses(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- shards --------------------------------------------------------------

TEST(RtShardTest, AdmissionDebitsTheOwningSliceNeverBorrowedPool) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  for (int n = 0; n < 2; ++n) k8s.add_node({.cores = 16.0});
  shard::ShardPlaneConfig pcfg;
  pcfg.shards = 2;
  shard::ShardedControlPlane plane(sim, net, k8s, /*global_cpu=*/8.0,
                                   memcg::Bytes{4} * kGiB, pcfg);
  std::vector<std::unique_ptr<obs::Observer>> observers;
  for (int s = 0; s < 2; ++s) {
    observers.push_back(std::make_unique<obs::Observer>());
    plane.attach_observer(s, *observers[s]);
  }
  core::AppSpec app;
  app.name = "rt-app";
  for (int i = 0; i < 3; ++i) {
    cluster::ContainerSpec cs;
    cs.name = "rt-app/c" + std::to_string(i);
    cs.base_memory = 64 * kMiB;
    app.containers.push_back(cs);
  }
  const auto members = plane.deploy(app);
  ASSERT_EQ(members.size(), 3u);
  const int owner = plane.shard_of_container(members[0]->id());
  ASSERT_GE(owner, 0);

  // Each shard owns a 4.0-core slice: the RT headroom is 0.7 x 4.0 = 2.8,
  // never the 8-core cluster pool (0.7 x 8 = 5.6 would take all three) and
  // never a borrowed loan.
  EXPECT_EQ(plane.admit_rt(members[0]->id(), spec_ms(100, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_EQ(plane.admit_rt(members[1]->id(), spec_ms(100, 100, 100)),
            Controller::RtAdmit::kAdmitted);
  EXPECT_EQ(plane.admit_rt(members[2]->id(), spec_ms(100, 100, 100)),
            Controller::RtAdmit::kRejectedPool)
      << "3.0 reserved cores would breach the shard slice's 2.8-core bound";
  EXPECT_DOUBLE_EQ(plane.shard(owner).controller().rt_reserved_cores(), 2.0);
  // An unowned container routes nowhere.
  EXPECT_EQ(plane.admit_rt(9999, spec_ms(50, 50, 100)),
            Controller::RtAdmit::kRejectedState);
}

// --- checker rules -------------------------------------------------------

TEST(RtCheckerTest, ForgedKillWithoutEvictionFlagsTheViolation) {
  RtRig rig;
  cluster::Container* rt = rig.containers[0];
  ASSERT_EQ(rig.escra.admit_rt(*rt, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  rig.sim.run_until(seconds(1));

  // Forge the exact breach the rule exists for: the trace reports the
  // admitted container killed with no kRtEvicted decision anywhere.
  obs::TraceEvent ev;
  ev.time = rig.sim.now();
  ev.kind = obs::EventKind::kContainerKilled;
  ev.container = rt->id();
  rig.observer.record(ev);

  EXPECT_FALSE(checker.ok());
  bool flagged = false;
  for (const check::Violation& v : checker.violations()) {
    if (v.rule == "rt-evict-explicit" && v.container == rt->id()) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << checker.report();
}

TEST(RtCheckerTest, ForgedStarvedDeadlineMissFlagsTheAllocator) {
  RtRig rig;
  cluster::Container* rt = rig.containers[0];
  ASSERT_EQ(rig.escra.admit_rt(*rt, spec_ms(20, 50, 100)),
            Controller::RtAdmit::kAdmitted);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  rig.sim.run_until(seconds(1));

  // Drop the book below the floor behind the controller's back, then forge
  // the miss the starved reservation would produce: allocator-caused.
  rig.escra.app().set_member_cores(rt->id(), 0.1);
  obs::TraceEvent ev;
  ev.time = rig.sim.now();
  ev.kind = obs::EventKind::kDeadlineMiss;
  ev.container = rt->id();
  ev.before = 0.4;
  ev.detail = 1000;
  rig.observer.record(ev);

  bool flagged = false;
  for (const check::Violation& v : checker.violations()) {
    if (v.rule == "rt-allocator-miss" && v.container == rt->id()) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << checker.report();
}

}  // namespace
}  // namespace escra
