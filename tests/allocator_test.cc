#include "core/allocator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace escra::core {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using memcg::kPageSize;
using sim::milliseconds;

constexpr sim::Duration kPeriod = milliseconds(100);

CpuStatsMsg stats(std::uint32_t id, double quota_cores, double unused_cores,
                  bool throttled) {
  CpuStatsMsg m;
  m.cgroup = id;
  m.quota = static_cast<sim::Duration>(quota_cores * kPeriod);
  m.unused = static_cast<sim::Duration>(unused_cores * kPeriod);
  m.throttled = throttled;
  return m;
}

struct Rig {
  EscraConfig config;
  DistributedContainer app{8.0, 4 * kGiB};
  ResourceAllocator alloc;

  explicit Rig(EscraConfig c = {}) : config(c), alloc(config, app) {}
};

// ------------------------------------------------------------------- CPU path

TEST(AllocatorCpuTest, UnknownContainerIgnored) {
  Rig rig;
  EXPECT_FALSE(rig.alloc.on_cpu_stats(stats(9, 1.0, 0.0, true)).has_value());
}

TEST(AllocatorCpuTest, ThrottleScalesUpFromPool) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 256 * kMiB);
  const auto decision = rig.alloc.on_cpu_stats(stats(1, 1.0, 0.0, true));
  ASSERT_TRUE(decision.has_value());
  EXPECT_GT(*decision, 1.0);
  EXPECT_DOUBLE_EQ(rig.app.member_cores(1), *decision);
  EXPECT_EQ(rig.alloc.cpu_scale_ups(), 1u);
}

TEST(AllocatorCpuTest, ScaleUpGrantBoundedByCurrentAllocation) {
  // The stabilized Section IV-D1 rule: one grant adds at most 2x the
  // current allocation (the limit at most triples per period) even when
  // the pool is much larger.
  Rig rig;
  rig.alloc.register_container(1, 1.0, 256 * kMiB);
  const auto d = rig.alloc.on_cpu_stats(stats(1, 1.0, 0.0, true));
  ASSERT_TRUE(d.has_value());
  EXPECT_LE(*d, 3.0 + 1e-9);
  EXPECT_GT(*d, 1.0);
}

TEST(AllocatorCpuTest, ScaleUpClampedByGlobalLimit) {
  Rig rig;
  rig.alloc.register_container(1, 7.5, 256 * kMiB);
  rig.alloc.register_container(2, 0.5, 256 * kMiB);
  // Pool is empty: the throttled container cannot grow.
  EXPECT_FALSE(rig.alloc.on_cpu_stats(stats(1, 7.5, 0.0, true)).has_value());
  EXPECT_DOUBLE_EQ(rig.app.cpu_unallocated(), 0.0);
}

TEST(AllocatorCpuTest, SustainedThrottlingGrowsGeometrically) {
  Rig rig;
  rig.alloc.register_container(1, 0.1, 256 * kMiB);
  double current = 0.1;
  for (int i = 0; i < 6; ++i) {
    const auto d = rig.alloc.on_cpu_stats(stats(1, current, 0.0, true));
    if (d.has_value()) current = *d;
  }
  // 0.1 doubles each period until the pool (8 cores) binds.
  EXPECT_GT(current, 3.0);
  EXPECT_LE(current, 8.0 + 1e-9);
}

TEST(AllocatorCpuTest, ScaleDownRequiresGammaUnused) {
  EscraConfig cfg;
  cfg.gamma = 0.2;
  Rig rig(cfg);
  rig.alloc.register_container(1, 2.0, 256 * kMiB);
  // Unused below gamma: no action.
  EXPECT_FALSE(rig.alloc.on_cpu_stats(stats(1, 2.0, 0.1, false)).has_value());
  // Unused above gamma: scale down fires.
  const auto d = rig.alloc.on_cpu_stats(stats(1, 2.0, 1.0, false));
  ASSERT_TRUE(d.has_value());
  EXPECT_LT(*d, 2.0);
  EXPECT_EQ(rig.alloc.cpu_scale_downs(), 1u);
}

TEST(AllocatorCpuTest, ScaleDownRemovesKappaOfWindowedMean) {
  EscraConfig cfg;
  cfg.kappa = 0.8;
  cfg.gamma = 0.2;
  cfg.window_periods = 5;
  Rig rig(cfg);
  rig.alloc.register_container(1, 4.0, 256 * kMiB);
  // Usage pinned at 3.0 cores while the limit walks down: unused runtime is
  // whatever the current quota leaves above 3.0.
  std::optional<double> d;
  double current = 4.0;
  for (int i = 0; i < 8; ++i) {
    d = rig.alloc.on_cpu_stats(stats(1, current, current - 3.0, false));
    if (d.has_value()) current = *d;
  }
  // Converges to the anti-oscillation floor: usage + gamma headroom.
  EXPECT_LT(current, 4.0);
  EXPECT_NEAR(current, 3.0 + rig.config.gamma, 0.15);
  EXPECT_GE(current, 3.0);  // never below last usage
}

TEST(AllocatorCpuTest, ScaleDownNeverBelowLastUsagePlusHeadroom) {
  Rig rig;
  rig.alloc.register_container(1, 4.0, 256 * kMiB);
  // Usage 3.8 of 4.0: unused 0.2... just at gamma, then a big-unused period.
  rig.alloc.on_cpu_stats(stats(1, 4.0, 3.0, false));
  const auto d = rig.alloc.on_cpu_stats(stats(1, 4.0, 0.5, false));
  if (d.has_value()) {
    // used_last = 3.5; floor = 3.5 + min(3.5, 0.2).
    EXPECT_GE(*d, 3.7 - 1e-9);
  }
}

TEST(AllocatorCpuTest, IdleContainerFallsToFloor) {
  EscraConfig cfg;
  cfg.min_cores = 0.05;
  Rig rig(cfg);
  rig.alloc.register_container(1, 2.0, 256 * kMiB);
  double current = 2.0;
  for (int i = 0; i < 50; ++i) {
    const auto d = rig.alloc.on_cpu_stats(stats(1, current, current, false));
    if (d.has_value()) current = *d;
  }
  EXPECT_NEAR(current, cfg.min_cores, 1e-9);
}

TEST(AllocatorCpuTest, FreedCapacityReturnsToPool) {
  Rig rig;
  rig.alloc.register_container(1, 6.0, 256 * kMiB);
  rig.alloc.register_container(2, 2.0, 256 * kMiB);
  EXPECT_DOUBLE_EQ(rig.app.cpu_unallocated(), 0.0);
  double current = 6.0;
  for (int i = 0; i < 30; ++i) {
    const auto d = rig.alloc.on_cpu_stats(stats(1, current, current, false));
    if (d.has_value()) current = *d;
  }
  EXPECT_GT(rig.app.cpu_unallocated(), 5.0);
  // Container 2 can now scale up into what container 1 released: the
  // cross-container sharing a Distributed Container exists to provide.
  const auto d2 = rig.alloc.on_cpu_stats(stats(2, 2.0, 0.0, true));
  ASSERT_TRUE(d2.has_value());
  EXPECT_GT(*d2, 2.0);
}

TEST(AllocatorCpuTest, DeregisterReleasesEverything) {
  Rig rig;
  rig.alloc.register_container(1, 5.0, kGiB);
  rig.alloc.deregister_container(1);
  EXPECT_DOUBLE_EQ(rig.app.cpu_unallocated(), 8.0);
  EXPECT_EQ(rig.app.mem_unallocated(), 4 * kGiB);
  EXPECT_FALSE(rig.alloc.knows(1));
  EXPECT_NO_THROW(rig.alloc.deregister_container(1));
}

// ---------------------------------------------------------------- memory path

OomEventMsg oom(std::uint32_t id, memcg::Bytes shortfall) {
  OomEventMsg e;
  e.container = id;
  e.attempted_charge = shortfall;
  e.shortfall = shortfall;
  return e;
}

TEST(AllocatorMemTest, GrantFromAvailablePool) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 256 * kMiB);
  const auto d = rig.alloc.on_oom_event(oom(1, 10 * kMiB));
  EXPECT_EQ(d.action, ResourceAllocator::MemAction::kGrant);
  // Grant covers the page-rounded shortfall plus the fixed block.
  EXPECT_EQ(d.new_limit, 256 * kMiB + 10 * kMiB + rig.config.oom_grant);
  EXPECT_EQ(rig.app.member_mem(1), d.new_limit);
  EXPECT_EQ(rig.alloc.mem_grants(), 1u);
}

TEST(AllocatorMemTest, ShortfallRoundedUpToPages) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 256 * kMiB);
  const auto d = rig.alloc.on_oom_event(oom(1, 100));  // odd size
  EXPECT_EQ(d.new_limit, 256 * kMiB + kPageSize + rig.config.oom_grant);
}

TEST(AllocatorMemTest, PartialGrantWhenPoolNearlyDry) {
  Rig rig;
  // One container holds nearly all memory; pool = 20 MiB.
  rig.alloc.register_container(1, 1.0, 4 * kGiB - 20 * kMiB);
  const auto d = rig.alloc.on_oom_event(oom(1, 8 * kMiB));
  EXPECT_EQ(d.action, ResourceAllocator::MemAction::kGrant);
  EXPECT_EQ(d.new_limit, 4 * kGiB);  // all of what remained
}

TEST(AllocatorMemTest, DryPoolAsksForReclamation) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 4 * kGiB);
  const auto d = rig.alloc.on_oom_event(oom(1, 10 * kMiB));
  EXPECT_EQ(d.action, ResourceAllocator::MemAction::kReclaimThenRetry);
  EXPECT_EQ(rig.alloc.mem_grants(), 0u);
}

TEST(AllocatorMemTest, PostReclaimFailureDenies) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 4 * kGiB);
  const auto d = rig.alloc.on_oom_event(oom(1, 10 * kMiB), /*post_reclaim=*/true);
  EXPECT_EQ(d.action, ResourceAllocator::MemAction::kDeny);
  EXPECT_EQ(rig.alloc.mem_denies(), 1u);
}

TEST(AllocatorMemTest, UnknownContainerDenied) {
  Rig rig;
  const auto d = rig.alloc.on_oom_event(oom(77, kMiB));
  EXPECT_EQ(d.action, ResourceAllocator::MemAction::kDeny);
}

TEST(AllocatorMemTest, ReclaimSyncShrinksShadowAndRefillsPool) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 2 * kGiB);
  rig.alloc.on_reclaimed(1, 512 * kMiB);
  EXPECT_EQ(rig.app.member_mem(1), 512 * kMiB);
  EXPECT_EQ(rig.app.mem_unallocated(), 4 * kGiB - 512 * kMiB);
  // Stale reclaim reports for deregistered containers are ignored.
  rig.alloc.deregister_container(1);
  EXPECT_NO_THROW(rig.alloc.on_reclaimed(1, kMiB));
}

TEST(AllocatorMemTest, ReclaimThenGrantEndToEnd) {
  Rig rig;
  rig.alloc.register_container(1, 1.0, 3 * kGiB);
  rig.alloc.register_container(2, 1.0, kGiB);
  // Pool dry; container 2 OOMs.
  auto d = rig.alloc.on_oom_event(oom(2, 32 * kMiB));
  ASSERT_EQ(d.action, ResourceAllocator::MemAction::kReclaimThenRetry);
  // The controller reclaims from container 1 (e.g. down to 1 GiB)...
  rig.alloc.on_reclaimed(1, kGiB);
  // ...and retries: now the grant succeeds.
  d = rig.alloc.on_oom_event(oom(2, 32 * kMiB), /*post_reclaim=*/true);
  EXPECT_EQ(d.action, ResourceAllocator::MemAction::kGrant);
  EXPECT_GT(d.new_limit, kGiB);
}

}  // namespace
}  // namespace escra::core
