// core::ContainerIndex: the dense slot interner under every hot-path SoA
// table. Locks the four properties the rest of the tree leans on — slot
// reuse hands out fresh generations, stale handles are inert (never aliases
// of the slot's next tenant), dense iteration is deterministic for a given
// call sequence, and a controller takeover's replay rebuilds an identical
// slot layout (slots are a pure function of registration order, so every
// replica that folds the same log agrees).
#include "core/container_index.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"

namespace escra {
namespace {

using core::ContainerIndex;
using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// --- generations & handles ------------------------------------------------

TEST(ContainerIndexTest, ReleaseBumpsGenerationBeforeReuse) {
  ContainerIndex idx;
  const std::uint32_t a = idx.intern(10);
  const std::uint32_t b = idx.intern(20);
  idx.intern(30);
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.capacity(), 3u);

  const ContainerIndex::Handle hb = idx.handle(20);
  EXPECT_EQ(idx.resolve(hb), b);
  const std::uint32_t gen_before = idx.generation(b);

  EXPECT_EQ(idx.release(20), b);
  EXPECT_FALSE(idx.contains(20));
  EXPECT_EQ(idx.generation(b), gen_before + 1);

  // LIFO reuse: the next unknown id takes b's slot, under the new
  // generation — a fresh tenancy, not a resurrection.
  bool created = false;
  const std::uint32_t c = idx.intern(40, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(c, b);
  EXPECT_EQ(idx.id_at(c), 40u);
  EXPECT_EQ(idx.capacity(), 3u) << "reuse must not grow the arrays";
  EXPECT_NE(idx.handle(40).generation, hb.generation);
  (void)a;
}

TEST(ContainerIndexTest, StaleHandlesAreInertAcrossReuseAndReintern) {
  ContainerIndex idx;
  idx.intern(1);
  const std::uint32_t slot = idx.intern(2);
  const ContainerIndex::Handle h = idx.handle(2);

  idx.release(2);
  EXPECT_EQ(idx.resolve(h), ContainerIndex::kInvalid) << "released";

  // Even the *same id* coming back lands under a new generation: the old
  // handle stays dead (its side-table rows may have been reinitialized).
  const std::uint32_t again = idx.intern(2);
  EXPECT_EQ(again, slot);
  EXPECT_EQ(idx.resolve(h), ContainerIndex::kInvalid) << "stale generation";
  EXPECT_EQ(idx.resolve(idx.handle(2)), slot) << "fresh handle resolves";

  // A default handle and an out-of-range slot never resolve.
  EXPECT_EQ(idx.resolve(ContainerIndex::Handle{}), ContainerIndex::kInvalid);
  EXPECT_EQ(idx.resolve(ContainerIndex::Handle{99, 0}),
            ContainerIndex::kInvalid);
}

// --- deterministic dense iteration ---------------------------------------

// Drives one index through an rng scripted intern/release churn and returns
// the full observable state: (slot, id) in for_each order.
std::vector<std::pair<std::uint32_t, cluster::ContainerId>> churn(
    std::uint64_t seed) {
  ContainerIndex idx;
  sim::Rng rng(seed);
  std::vector<cluster::ContainerId> live;
  cluster::ContainerId next_id = 1;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const cluster::ContainerId id = next_id++;
      idx.intern(id);
      live.push_back(id);
    } else {
      const std::size_t victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      idx.release(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  std::vector<std::pair<std::uint32_t, cluster::ContainerId>> order;
  idx.for_each([&](std::uint32_t slot, cluster::ContainerId id) {
    order.emplace_back(slot, id);
  });
  EXPECT_EQ(order.size(), idx.size());
  return order;
}

TEST(ContainerIndexTest, DenseIterationIsDeterministicAcrossIdenticalSeeds) {
  const auto a = churn(0xc0ffee);
  const auto b = churn(0xc0ffee);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b) << "same call sequence, same slot layout, same order";

  // for_each visits ascending slots (dense scan, holes skipped) and every
  // reported slot round-trips through the accessors.
  ContainerIndex idx;
  for (const auto& [slot, id] : a) idx.intern(id);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].first, a[i].first) << "ascending slot order";
  }

  const auto c = churn(0xdecade);
  EXPECT_NE(a, c) << "guard: the churn script actually depends on the seed";
}

// --- slot layout across controller takeover -------------------------------

// A full HA rig: leader + warm standby, four managed containers, a mid-run
// deregistration for churn, then a leader kill. The promoted standby replays
// the replicated registrations; the slot layout it builds must be a pure
// function of that replay — identical across identical runs — and the
// post-takeover index must agree with the registry it serves.
struct TakeoverRun {
  std::vector<std::pair<cluster::ContainerId, std::uint32_t>> slots;
  std::uint64_t epoch = 0;
};

TakeoverRun run_takeover(bool with_churn) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  k8s.add_node({});
  std::vector<cluster::Container*> containers;
  for (int i = 0; i < 4; ++i) {
    cluster::ContainerSpec s;
    s.name = "c" + std::to_string(i);
    s.base_memory = 64 * kMiB;
    s.max_parallelism = 4.0;
    containers.push_back(&k8s.create_container(std::move(s), 0.5, 128 * kMiB));
  }
  core::EscraSystem escra(sim, net, k8s, 16.0, 8 * kGiB);
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(containers);
  escra.start();
  ha::HaConfig cfg;
  cfg.standbys = 1;
  ha::HaControlPlane ha(escra, net, cfg);
  ha.start();

  if (with_churn) {
    // Free a slot mid-run so the pre-kill layout has seen the free list.
    sim.schedule_at(milliseconds(500), [&] { escra.release(*containers[1]); });
  }
  sim.schedule_at(seconds(1), [&] { ha.kill_leader(); });
  sim.run_until(seconds(3));

  EXPECT_FALSE(escra.crashed()) << "the standby must hold the seat";
  EXPECT_EQ(ha.failovers(), 1u);

  TakeoverRun out;
  out.epoch = escra.controller().epoch();
  for (const cluster::Container* c : containers) {
    out.slots.emplace_back(c->id(),
                           escra.controller().container_slot_for_test(c->id()));
  }
  return out;
}

TEST(ContainerIndexTest, TakeoverReplayRebuildsTheSlotLayoutDeterministically) {
  // Without churn the replicated registration order equals the bootstrap
  // order, so replay reproduces the dead leader's layout exactly: dense
  // ascending slots for the four containers, none invalid.
  const TakeoverRun plain = run_takeover(/*with_churn=*/false);
  for (std::size_t i = 0; i < plain.slots.size(); ++i) {
    EXPECT_EQ(plain.slots[i].second, static_cast<std::uint32_t>(i))
        << "container " << plain.slots[i].first;
  }

  // With churn, the layouts of two identical runs must still agree slot for
  // slot (pure function of the replayed log), the released container must
  // stay un-interned, and the survivors must be dense in [0, live).
  const TakeoverRun a = run_takeover(/*with_churn=*/true);
  const TakeoverRun b = run_takeover(/*with_churn=*/true);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.slots[1].second, core::ContainerIndex::kInvalid)
      << "released container must not be resurrected by the replay";
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_LT(a.slots[i].second, 3u) << "survivors pack densely";
  }
}

}  // namespace
}  // namespace escra

