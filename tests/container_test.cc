#include "cluster/container.h"

#include <gtest/gtest.h>

#include "cfs/node_scheduler.h"
#include "sim/event_queue.h"

namespace escra::cluster {
namespace {

using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

constexpr sim::Duration kPeriod = milliseconds(100);

ContainerSpec spec(double parallelism = 4.0,
                   memcg::Bytes base = 64 * kMiB,
                   sim::Duration restart = seconds(3)) {
  ContainerSpec s;
  s.name = "c";
  s.max_parallelism = parallelism;
  s.base_memory = base;
  s.restart_delay = restart;
  return s;
}

// Drives a single container through a node scheduler.
struct Rig {
  sim::Simulation sim;
  cfs::NodeCpuScheduler sched{sim, {.cores = 8.0}};
  Container c;

  explicit Rig(ContainerSpec s = spec(), double cores = 2.0,
               memcg::Bytes mem_limit = 256 * kMiB)
      : c(sim, 1, std::move(s), kPeriod, cores, mem_limit) {
    sched.attach(&c);
  }
};

TEST(ContainerTest, BaseMemoryChargedAtStart) {
  Rig rig;
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 64 * kMiB);
  EXPECT_TRUE(rig.c.running());
}

TEST(ContainerTest, WorkCompletesAndReleasesMemory) {
  Rig rig;
  bool done = false;
  rig.c.submit(milliseconds(50), 10 * kMiB, [&](bool ok) { done = ok; });
  EXPECT_EQ(rig.c.queue_depth(), 1u);
  rig.sim.run_until(milliseconds(200));
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.c.queue_depth(), 0u);
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 64 * kMiB);
  EXPECT_EQ(rig.c.completed_items(), 1u);
}

TEST(ContainerTest, MemoryChargedOnlyWhileExecuting) {
  Rig rig(spec(/*parallelism=*/1.0));
  // Two items; with parallelism 1 only the first executes at a time, so at
  // most one working set is charged on top of the base.
  rig.c.submit(milliseconds(500), 30 * kMiB, nullptr);
  rig.c.submit(milliseconds(500), 30 * kMiB, nullptr);
  rig.sim.run_until(milliseconds(50));
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 64 * kMiB + 30 * kMiB);
}

TEST(ContainerTest, FifoCompletionOrder) {
  Rig rig(spec(/*parallelism=*/1.0));
  std::vector<int> order;
  rig.c.submit(milliseconds(30), 0, [&](bool) { order.push_back(1); });
  rig.c.submit(milliseconds(30), 0, [&](bool) { order.push_back(2); });
  rig.c.submit(milliseconds(30), 0, [&](bool) { order.push_back(3); });
  rig.sim.run_until(milliseconds(500));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ContainerTest, ThroughputBoundedByCpuLimit) {
  Rig rig(spec(), /*cores=*/0.5);
  int completed = 0;
  // 20 items x 50ms = 1000ms core-time; at 0.5 cores that is 2 seconds.
  for (int i = 0; i < 20; ++i) {
    rig.c.submit(milliseconds(50), 0, [&](bool ok) { completed += ok; });
  }
  rig.sim.run_until(seconds(1));
  EXPECT_NEAR(completed, 10, 1);
  rig.sim.run_until(seconds(3));
  EXPECT_EQ(completed, 20);
}

TEST(ContainerTest, OomKillFailsAllQueuedWork) {
  Rig rig(spec(4.0, 64 * kMiB), 2.0, /*mem_limit=*/100 * kMiB);
  int ok = 0, failed = 0;
  const auto done = [&](bool o) { o ? ++ok : ++failed; };
  // Each working set is 30 MiB; the second concurrent charge overflows
  // 64 + 30 + 30 > 100.
  rig.c.submit(milliseconds(300), 30 * kMiB, done);
  rig.c.submit(milliseconds(300), 30 * kMiB, done);
  rig.c.submit(milliseconds(300), 30 * kMiB, done);
  rig.sim.run_until(milliseconds(100));
  EXPECT_EQ(failed, 3);
  EXPECT_EQ(ok, 0);
  EXPECT_FALSE(rig.c.running());
  EXPECT_EQ(rig.c.oom_kill_count(), 1u);
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 0);
}

TEST(ContainerTest, RestartsAfterDelayAndRechargesBase) {
  Rig rig(spec(4.0, 64 * kMiB, seconds(2)), 2.0, 100 * kMiB);
  rig.c.submit(milliseconds(10), 60 * kMiB, nullptr);  // overflows at exec
  rig.sim.run_until(milliseconds(100));
  ASSERT_FALSE(rig.c.running());
  EXPECT_FALSE(rig.c.submit(1, 0, nullptr)) << "restarting rejects work";
  rig.sim.run_until(milliseconds(100) + seconds(3));
  EXPECT_TRUE(rig.c.running());
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 64 * kMiB);
  EXPECT_TRUE(rig.c.submit(1, 0, nullptr));
}

TEST(ContainerTest, OomHookRescuePreventsKill) {
  Rig rig(spec(4.0, 64 * kMiB), 2.0, 100 * kMiB);
  rig.c.mem_cgroup().set_oom_hook(
      [](memcg::MemCgroup& m, memcg::Bytes, memcg::Bytes shortfall) {
        m.set_limit(m.limit() + shortfall + 16 * kMiB);
        return true;
      });
  bool done = false;
  rig.c.submit(milliseconds(50), 60 * kMiB, [&](bool ok) { done = ok; });
  rig.sim.run_until(milliseconds(300));
  EXPECT_TRUE(done);
  EXPECT_TRUE(rig.c.running());
  EXPECT_EQ(rig.c.oom_kill_count(), 0u);
  EXPECT_EQ(rig.c.mem_cgroup().oom_rescues(), 1u);
}

TEST(ContainerTest, RescueStallPausesExecution) {
  ContainerSpec s = spec(4.0, 64 * kMiB);
  s.oom_rescue_stall = milliseconds(40);
  Rig rig(std::move(s), 2.0, 100 * kMiB);
  rig.c.mem_cgroup().set_oom_hook(
      [](memcg::MemCgroup& m, memcg::Bytes, memcg::Bytes shortfall) {
        m.set_limit(m.limit() + shortfall);
        return true;
      });
  rig.c.submit(milliseconds(10), 60 * kMiB, nullptr);
  rig.sim.run_until(milliseconds(20));
  // The charge happened in the first slice; the stall blocks progress, so
  // demand should be zero for ~40ms.
  EXPECT_EQ(rig.c.cpu_demand(milliseconds(10)), 0.0);
  rig.sim.run_until(milliseconds(120));
  EXPECT_EQ(rig.c.queue_depth(), 0u);
}

TEST(ContainerTest, OomKillObserverFires) {
  Rig rig(spec(4.0, 64 * kMiB), 2.0, 80 * kMiB);
  int kills = 0;
  rig.c.set_oom_kill_observer([&] { ++kills; });
  rig.c.submit(milliseconds(10), 60 * kMiB, nullptr);
  rig.sim.run_until(milliseconds(100));
  EXPECT_EQ(kills, 1);
}

TEST(ContainerTest, EvictRestartAppliesNewLimits) {
  Rig rig;
  int failed = 0;
  rig.c.submit(milliseconds(500), 0, [&](bool ok) { failed += !ok; });
  rig.c.evict_restart(1.25, 96 * kMiB);
  EXPECT_EQ(failed, 1) << "in-flight work dropped by the eviction";
  EXPECT_FALSE(rig.c.running());
  EXPECT_EQ(rig.c.eviction_count(), 1u);
  EXPECT_EQ(rig.c.oom_kill_count(), 0u);
  EXPECT_DOUBLE_EQ(rig.c.cpu_cgroup().limit_cores(), 1.25);
  EXPECT_EQ(rig.c.mem_cgroup().limit(), 96 * kMiB);
  rig.sim.run_until(seconds(4));
  EXPECT_TRUE(rig.c.running());
}

TEST(ContainerTest, StartupWorkBurnsCpu) {
  ContainerSpec s = spec(4.0);
  s.startup_cpu = milliseconds(400);
  Rig rig(std::move(s), 4.0);
  EXPECT_GT(rig.c.queue_depth(), 0u);
  rig.sim.run_until(milliseconds(200));
  EXPECT_EQ(rig.c.queue_depth(), 0u);
  EXPECT_GE(rig.c.cpu_cgroup().total_consumed(), milliseconds(400));
}

TEST(ContainerTest, AdjustResidentGrowsAndShrinks) {
  Rig rig(spec(4.0, 64 * kMiB), 2.0, 256 * kMiB);
  rig.c.adjust_resident(32 * kMiB);
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 96 * kMiB);
  rig.c.adjust_resident(-16 * kMiB);
  EXPECT_EQ(rig.c.mem_cgroup().usage(), 80 * kMiB);
}

TEST(ContainerTest, AdjustResidentCanOomKill) {
  Rig rig(spec(4.0, 64 * kMiB), 2.0, 100 * kMiB);
  rig.c.adjust_resident(50 * kMiB);
  EXPECT_FALSE(rig.c.running());
}

TEST(ContainerTest, DemandRespectsParallelism) {
  Rig rig(spec(/*parallelism=*/2.0));
  for (int i = 0; i < 8; ++i) rig.c.submit(seconds(1), 0, nullptr);
  EXPECT_DOUBLE_EQ(rig.c.cpu_demand(milliseconds(10)), 2.0);
}

TEST(ContainerTest, DemandZeroWhenRestarting) {
  Rig rig(spec(4.0, 64 * kMiB), 2.0, 80 * kMiB);
  rig.c.submit(milliseconds(10), 60 * kMiB, nullptr);
  rig.sim.run_until(milliseconds(100));
  ASSERT_FALSE(rig.c.running());
  EXPECT_DOUBLE_EQ(rig.c.cpu_demand(milliseconds(10)), 0.0);
}

TEST(ContainerTest, CompletionCanSubmitMoreWork) {
  Rig rig;
  bool second_done = false;
  rig.c.submit(milliseconds(10), 0, [&](bool) {
    rig.c.submit(milliseconds(10), 0, [&](bool ok) { second_done = ok; });
  });
  rig.sim.run_until(milliseconds(300));
  EXPECT_TRUE(second_done);
}

}  // namespace
}  // namespace escra::cluster
