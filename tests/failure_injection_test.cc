// Failure injection: Escra's control loops under degraded conditions —
// lossy telemetry, network jitter, a paused Controller, container crashes
// mid-run, and pool exhaustion. The system must degrade gracefully ("fail
// static": containers keep running at their last-applied limits) and
// recover when the fault clears.
#include <gtest/gtest.h>

#include "app/benchmarks.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::unique_ptr<app::Application> application;
  std::unique_ptr<core::EscraSystem> escra;
  std::unique_ptr<workload::LoadGenerator> loadgen;

  explicit Rig(double rate_rps = 200.0) {
    for (int i = 0; i < 3; ++i) k8s.add_node({});
    application = std::make_unique<app::Application>(
        k8s, app::make_teastore(), sim::Rng(7), 1.0, 512 * kMiB);
    escra = std::make_unique<core::EscraSystem>(sim, net, k8s, 12.0, 8 * kGiB);
    escra->manage(application->containers());
    escra->start();
    loadgen = std::make_unique<workload::LoadGenerator>(
        sim, std::make_unique<workload::ExpArrivals>(rate_rps, sim::Rng(3)),
        [this](workload::LoadGenerator::Done done) {
          application->submit_request(std::move(done));
        });
  }

  std::uint64_t total_oom_kills() const {
    std::uint64_t kills = 0;
    for (const cluster::Container* c : application->containers()) {
      kills += c->oom_kill_count();
    }
    return kills;
  }
};

TEST(FaultInjectionTest, NetworkLossValidation) {
  sim::Simulation sim;
  net::Network net(sim);
  EXPECT_THROW(net.set_loss(-0.1, sim::Rng(1)), std::invalid_argument);
  EXPECT_THROW(net.set_loss(1.0, sim::Rng(1)), std::invalid_argument);
  EXPECT_THROW(net.set_jitter(-1), std::invalid_argument);
  EXPECT_NO_THROW(net.set_loss(0.5, sim::Rng(1)));
}

TEST(FaultInjectionTest, LossDropsOnlyTelemetry) {
  sim::Simulation sim;
  net::Network net(sim);
  net.set_loss(0.5, sim::Rng(2));
  int telemetry = 0, rpc = 0, mem_events = 0;
  for (int i = 0; i < 400; ++i) {
    net.send(net::Channel::kCpuTelemetry, 64, [&] { ++telemetry; });
    net.send(net::Channel::kMemoryEvent, 64, [&] { ++mem_events; });
    net.rpc(64, 64, [&] { ++rpc; }, [] {});
  }
  sim.run_all();
  EXPECT_NEAR(telemetry, 200, 50);
  EXPECT_EQ(mem_events, 400) << "TCP memory events are never dropped";
  EXPECT_EQ(rpc, 400) << "RPCs retransmit";
  EXPECT_NEAR(static_cast<double>(net.dropped_messages()), 200.0, 50.0);
}

TEST(FaultInjectionTest, EscraToleratesTenPercentTelemetryLoss) {
  Rig rig;
  rig.net.set_loss(0.10, sim::Rng(11));
  rig.loadgen->run(seconds(5), seconds(35));
  rig.sim.run_until(seconds(40));
  // The per-period stream is dense enough that losing one in ten statistics
  // merely delays individual decisions by a period.
  EXPECT_EQ(rig.loadgen->failed(), 0u);
  EXPECT_EQ(rig.total_oom_kills(), 0u);
  EXPECT_GT(rig.net.dropped_messages(), 50u);
  EXPECT_GT(rig.loadgen->succeeded(), 4000u);
}

TEST(FaultInjectionTest, EscraToleratesHeavyLossWithDegradedTails) {
  Rig baseline;
  baseline.loadgen->run(seconds(5), seconds(35));
  baseline.sim.run_until(seconds(40));

  Rig lossy;
  lossy.net.set_loss(0.5, sim::Rng(12));
  lossy.loadgen->run(seconds(5), seconds(35));
  lossy.sim.run_until(seconds(40));

  // Still functional: comparable throughput, no kills.
  EXPECT_EQ(lossy.total_oom_kills(), 0u);
  EXPECT_NEAR(lossy.loadgen->throughput_rps(),
              baseline.loadgen->throughput_rps(), 20.0);
}

TEST(FaultInjectionTest, JitterDoesNotBreakControlLoop) {
  Rig rig;
  rig.net.set_jitter(milliseconds(20));  // 20 ms delivery jitter
  rig.loadgen->run(seconds(5), seconds(35));
  rig.sim.run_until(seconds(40));
  EXPECT_EQ(rig.loadgen->failed(), 0u);
  EXPECT_EQ(rig.total_oom_kills(), 0u);
}

TEST(FaultInjectionTest, ControllerPauseFailsStatic) {
  // With the reclamation loop stopped and telemetry effectively ignored,
  // containers keep running at their last limits — degraded efficiency, no
  // outage.
  Rig rig;
  rig.loadgen->run(seconds(5), seconds(65));
  rig.sim.schedule_at(seconds(20), [&] { rig.escra->stop(); });
  rig.sim.run_until(seconds(40));
  const double tput_during_pause = rig.loadgen->throughput_rps();
  EXPECT_GT(tput_during_pause, 0.0);
  rig.sim.schedule_at(seconds(40), [&] { rig.escra->start(); });
  rig.sim.run_until(seconds(70));
  EXPECT_EQ(rig.total_oom_kills(), 0u);
  EXPECT_GT(rig.loadgen->succeeded(), 8000u);
}

TEST(FaultInjectionTest, ContainerCrashRecoversUnderEscra) {
  Rig rig;
  rig.loadgen->run(seconds(5), seconds(35));
  // Crash one replica mid-run (an eviction models a node-agent restart).
  rig.sim.schedule_at(seconds(15), [&] {
    rig.application->containers()[0]->evict_restart(0.5, 256 * kMiB);
  });
  rig.sim.run_until(seconds(40));
  // Some requests fail during the restart window; afterwards Escra re-fits
  // the limits and traffic completes again.
  EXPECT_GT(rig.loadgen->failed(), 0u);
  EXPECT_GT(rig.loadgen->succeeded(), 4000u);
  EXPECT_TRUE(rig.application->containers()[0]->running());
}

TEST(FaultInjectionTest, StaleTelemetryFromDeregisteredContainerIgnored) {
  Rig rig;
  rig.sim.run_until(seconds(2));
  cluster::Container* victim = rig.application->containers()[0];
  // Deregister while its telemetry is still in flight.
  rig.escra->release(*victim);
  EXPECT_NO_THROW(rig.sim.run_until(seconds(5)));
  // Re-adopt: it rejoins the pool as a late joiner.
  rig.escra->adopt(*victim);
  EXPECT_TRUE(rig.escra->controller().is_registered(victim->id()));
  rig.sim.run_until(seconds(10));
}

// Post-fault recovery, judged on behaviour rather than instantaneous
// limits: the kappa/upsilon loop hunts around demand, so per-container
// trajectories of a faulted and an unfaulted run never line up again.
// What must hold after the fault clears: nobody was OOM-killed (fail
// static), the rejoin triggered a resync, decisions resume flowing, and
// the time-averaged aggregate CPU limit and throughput land where an
// identical-seed unfaulted run lands.
TEST(FaultInjectionTest, RecoveryAfterPartitionAndAgentCrash) {
  enum class Fault { kNone, kPartition, kAgentCrash };
  struct Outcome {
    double tail_mean_cores = 0.0;
    double throughput = 0.0;
    std::uint64_t kills = 0;
    std::uint64_t resyncs = 0;
    bool decisions_resumed = false;
  };
  // Fault at 15 s, cleared by 18 s; tail window 25..40 s is pure recovery.
  auto run = [](Fault fault) {
    Rig rig;
    std::unique_ptr<fault::FaultInjector> injector;
    if (fault != Fault::kNone) {
      injector =
          std::make_unique<fault::FaultInjector>(rig.sim, rig.net, *rig.escra);
      if (fault == Fault::kPartition) {
        injector->inject_partition(1, seconds(15), seconds(3));
      } else {
        injector->inject_agent_crash(1, seconds(15), seconds(2));
      }
    }
    rig.loadgen->run(seconds(2), seconds(38));
    double sum = 0.0;
    std::uint64_t samples = 0;
    rig.sim.schedule_every(seconds(25), milliseconds(100), [&] {
      double total = 0.0;
      for (const cluster::Container* c : rig.application->containers()) {
        total += c->cpu_cgroup().limit_cores();
      }
      sum += total;
      ++samples;
    });
    std::uint64_t updates_at_heal = 0;
    rig.sim.schedule_at(seconds(18), [&] {
      updates_at_heal = rig.escra->controller().limit_updates_sent();
    });
    rig.sim.run_until(seconds(40));
    Outcome out;
    out.tail_mean_cores = sum / static_cast<double>(samples);
    out.throughput = rig.loadgen->throughput_rps();
    out.kills = rig.total_oom_kills();
    out.resyncs = rig.escra->controller().resyncs();
    out.decisions_resumed =
        rig.escra->controller().limit_updates_sent() > updates_at_heal;
    return out;
  };

  const Outcome baseline = run(Fault::kNone);
  ASSERT_GT(baseline.tail_mean_cores, 0.0);
  for (const Fault fault : {Fault::kPartition, Fault::kAgentCrash}) {
    SCOPED_TRACE(fault == Fault::kPartition ? "partition" : "agent-crash");
    const Outcome faulted = run(fault);
    EXPECT_EQ(faulted.kills, 0u) << "fail static: the fault kills nothing";
    EXPECT_GT(faulted.resyncs, 0u) << "the rejoin triggered a resync";
    EXPECT_TRUE(faulted.decisions_resumed);
    EXPECT_NEAR(faulted.tail_mean_cores, baseline.tail_mean_cores,
                0.25 * baseline.tail_mean_cores);
    EXPECT_NEAR(faulted.throughput, baseline.throughput,
                0.15 * baseline.throughput);
  }
}

TEST(FaultInjectionTest, MemoryPoolExhaustionKillsOnlyTheHog) {
  // One container grows without bound. Escra rescues it while the pool and
  // neighbours' slack last; once the application truly has no memory left,
  // that container (and only that container) is killed.
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  cluster::ContainerSpec hog_spec;
  hog_spec.name = "hog";
  hog_spec.base_memory = 64 * kMiB;
  cluster::Container& hog = k8s.create_container(hog_spec, 1.0, 256 * kMiB);
  cluster::ContainerSpec other_spec;
  other_spec.name = "other";
  other_spec.base_memory = 64 * kMiB;
  cluster::Container& other = k8s.create_container(other_spec, 1.0, 256 * kMiB);

  core::EscraSystem escra(sim, net, k8s, 4.0, 1 * kGiB);
  escra.manage({&hog, &other});
  escra.start();

  sim.schedule_every(milliseconds(500), milliseconds(500),
                     [&] { hog.adjust_resident(32 * kMiB); });
  sim.run_until(seconds(30));
  // The growth loop keeps running after the restart, so the hog can die
  // more than once; what matters is that it does die and nothing else does.
  EXPECT_GE(hog.oom_kill_count(), 1u) << "the hog eventually dies";
  EXPECT_EQ(other.oom_kill_count(), 0u) << "the neighbour is isolated";
  EXPECT_GT(escra.controller().oom_rescues(), 5u)
      << "but only after the pool was genuinely exhausted";
  // The global limit was never exceeded.
  EXPECT_LE(escra.app().mem_allocated(), escra.app().mem_limit());
}

}  // namespace
}  // namespace escra
