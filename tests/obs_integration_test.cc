// Integration tests for control-plane observability on a live system: a
// throttled container produces the full ThrottleObserved -> CpuGrant ->
// RpcIssued -> RpcApplied causal chain within one CFS period of simulated
// time, the profiler sees sub-second loops, the mirrored counters agree
// with the Controller's own, and two identical-seed runs export
// byte-identical decision traces.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "app/benchmarks.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::seconds;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  std::unique_ptr<app::Application> application;
  std::unique_ptr<core::EscraSystem> escra;
  std::unique_ptr<workload::LoadGenerator> gen;

  Rig() {
    for (int i = 0; i < 3; ++i) k8s.add_node({});
    application = std::make_unique<app::Application>(
        k8s, app::make_teastore(), sim::Rng(7), 1.0, 512 * kMiB);
    escra = std::make_unique<core::EscraSystem>(sim, net, k8s, 12.0, 8 * kGiB);
    escra->attach_observer(observer);
    net.attach_metrics(observer.metrics());
    escra->manage(application->containers());
    escra->start();
    gen = std::make_unique<workload::LoadGenerator>(
        sim, std::make_unique<workload::ExpArrivals>(250.0, sim::Rng(3)),
        [this](workload::LoadGenerator::Done done) {
          application->submit_request(std::move(done));
        });
    gen->run(seconds(2), seconds(20));
  }
};

TEST(ObsIntegrationTest, ThrottleProducesCausalChainWithinOneCfsPeriod) {
  Rig rig;
  rig.sim.run_until(seconds(25));

  const obs::TraceBuffer& trace = rig.observer.trace();
  ASSERT_GT(trace.size(), 0u);

  // Walk every RpcApplied whose chain roots at a throttle observation: each
  // must be the canonical 4-hop chain, monotone in time, through a single
  // container, completing within one CFS period (the control loop reacts to
  // a throttled period before the next one ends).
  const sim::Duration cfs_period = rig.escra->config().cfs_period;
  std::size_t complete_chains = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    if (ev.kind != obs::EventKind::kRpcApplied) continue;
    const auto chain = trace.chain(ev.id);
    if (chain.empty() ||
        chain.front().kind != obs::EventKind::kThrottleObserved) {
      continue;
    }
    ++complete_chains;
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[1].kind, obs::EventKind::kCpuGrant);
    EXPECT_EQ(chain[2].kind, obs::EventKind::kRpcIssued);
    EXPECT_EQ(chain[3].kind, obs::EventKind::kRpcApplied);
    for (std::size_t hop = 1; hop < chain.size(); ++hop) {
      EXPECT_EQ(chain[hop].container, chain[0].container);
      EXPECT_GE(chain[hop].time, chain[hop - 1].time);
    }
    EXPECT_GT(chain[1].after, chain[1].before);  // grant raises the limit
    EXPECT_LE(chain.back().time - chain.front().time, cfs_period);
  }
  // A 250 req/s run over TeaStore throttles constantly: many full chains.
  EXPECT_GT(complete_chains, 10u);
}

TEST(ObsIntegrationTest, ProfilerSeesSubSecondLoops) {
  Rig rig;
  rig.sim.run_until(seconds(25));

  const obs::LoopProfiler& prof = rig.observer.profiler();
  ASSERT_GT(prof.loops_completed(), 10u);
  // Telemetry one-way + RPC one-way: hundreds of microseconds, and in any
  // case far below the paper's one-second bar.
  EXPECT_LT(prof.histogram(obs::LoopStage::kEndToEnd).percentile(99),
            sim::seconds(1));
  EXPECT_GT(prof.stat(obs::LoopStage::kFireToIngest).mean(), 0.0);
  EXPECT_GT(prof.stat(obs::LoopStage::kDecideToApply).mean(), 0.0);
}

TEST(ObsIntegrationTest, MirroredCountersAgreeWithController) {
  Rig rig;
  rig.sim.run_until(seconds(25));

  const auto& m = rig.observer.metrics();
  const auto counter = [&](const char* name) {
    const obs::Counter* c = m.find_counter(name);
    return c != nullptr ? c->value() : ~0ull;
  };
  EXPECT_EQ(counter("controller.stats_ingested"),
            rig.escra->controller().stats_received());
  EXPECT_EQ(counter("allocator.cpu_grants"),
            rig.escra->allocator().cpu_scale_ups());
  EXPECT_EQ(counter("allocator.cpu_shrinks"),
            rig.escra->allocator().cpu_scale_downs());
  EXPECT_EQ(counter("controller.oom_events"),
            rig.escra->controller().oom_events());
  EXPECT_EQ(counter("containers.registered_total"),
            rig.application->containers().size());
  EXPECT_DOUBLE_EQ(m.find_gauge("containers.active")->value(),
                   static_cast<double>(rig.application->containers().size()));
  // Every issued limit-update RPC landed (lossless control channel), and
  // each landed RPC is one Agent cgroup write.
  EXPECT_EQ(counter("controller.rpcs_issued"), counter("controller.rpcs_applied"));
  EXPECT_EQ(counter("agent.limit_applies"), counter("controller.rpcs_applied"));
  // Pool gauges mirror the Distributed Container's shadow state.
  EXPECT_DOUBLE_EQ(m.find_gauge("pool.cpu_allocated_cores")->value(),
                   rig.escra->app().cpu_allocated());
  // The network carried the telemetry: bytes on the CPU telemetry channel.
  const obs::Counter* telemetry = m.find_counter("net.cpu-telemetry.bytes");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_GT(telemetry->value(), 0u);
}

TEST(ObsIntegrationTest, IdenticalSeedsExportByteIdenticalTraces) {
  const auto run = [] {
    Rig rig;
    rig.sim.run_until(seconds(25));
    std::ostringstream out;
    rig.observer.trace().export_jsonl(out);
    std::ostringstream metrics;
    rig.observer.metrics().export_csv(metrics, rig.sim.now());
    return std::make_pair(out.str(), metrics.str());
  };
  const auto [trace1, metrics1] = run();
  const auto [trace2, metrics2] = run();
  EXPECT_GT(trace1.size(), 0u);
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(metrics1, metrics2);
}

}  // namespace
}  // namespace escra
