#include "net/network.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace escra::net {
namespace {

using sim::microseconds;
using sim::milliseconds;

TEST(NetworkTest, SendDeliversAfterChannelLatency) {
  sim::Simulation sim;
  Network net(sim, {.telemetry_latency = microseconds(80),
                    .rpc_latency = microseconds(150)});
  sim::TimePoint telemetry_at = -1, rpc_at = -1;
  net.send(Channel::kCpuTelemetry, 64, [&] { telemetry_at = sim.now(); });
  net.send(Channel::kControlRpc, 128, [&] { rpc_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(telemetry_at, microseconds(80));
  EXPECT_EQ(rpc_at, microseconds(150));
}

TEST(NetworkTest, PerChannelAccounting) {
  sim::Simulation sim;
  Network net(sim);
  net.send(Channel::kCpuTelemetry, 100, [] {});
  net.send(Channel::kCpuTelemetry, 100, [] {});
  net.send(Channel::kMemoryEvent, 50, [] {});
  sim.run_all();
  EXPECT_EQ(net.stats(Channel::kCpuTelemetry).messages, 2u);
  EXPECT_EQ(net.stats(Channel::kCpuTelemetry).bytes, 200u);
  EXPECT_EQ(net.stats(Channel::kMemoryEvent).bytes, 50u);
  EXPECT_EQ(net.stats(Channel::kRegistration).messages, 0u);
  EXPECT_EQ(net.total_bytes(), 250u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(NetworkTest, RpcRoundTripOrdering) {
  sim::Simulation sim;
  Network net(sim, {.rpc_latency = microseconds(100)});
  sim::TimePoint request_at = -1, response_at = -1;
  net.rpc(
      200, 80, [&] { request_at = sim.now(); },
      [&] { response_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(request_at, microseconds(100));
  EXPECT_EQ(response_at, microseconds(200));
  EXPECT_EQ(net.stats(Channel::kControlRpc).bytes, 280u);
  EXPECT_EQ(net.stats(Channel::kControlRpc).messages, 2u);
}

TEST(NetworkTest, SubSecondControlLoopIsFeasible) {
  // The paper's core premise: a telemetry + decision + limit-update cycle
  // completes in well under one CFS period.
  sim::Simulation sim;
  Network net(sim);
  sim::TimePoint done = -1;
  net.send(Channel::kCpuTelemetry, 66, [&] {
    net.rpc(280, 120, [&] { done = sim.now(); }, [] {});
  });
  sim.run_all();
  EXPECT_LT(done, milliseconds(1));
}

TEST(NetworkTest, PeakBandwidthOverWindow) {
  sim::Simulation sim;
  Network net(sim, {.bandwidth_window = milliseconds(100)});
  // 10 KB in the first window, 1 KB later.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * milliseconds(5),
                    [&] { net.send(Channel::kCpuTelemetry, 1024, [] {}); });
  }
  sim.schedule_at(milliseconds(500),
                  [&] { net.send(Channel::kCpuTelemetry, 1024, [] {}); });
  sim.run_all();
  // Peak window saw 10 KiB -> 10*1024*8 bits / 0.1 s = 819.2 kbps.
  EXPECT_NEAR(net.peak_mbps(), 0.8192, 1e-6);
}

TEST(NetworkTest, MeanBandwidthOverRun) {
  sim::Simulation sim;
  Network net(sim);
  net.send(Channel::kCpuTelemetry, 125000, [] {});  // 1 Mbit
  sim.run_all();
  sim.run_until(sim::seconds(1));
  EXPECT_NEAR(net.mean_mbps(), 1.0, 1e-6);
}

TEST(NetworkTest, ZeroElapsedMeanIsZero) {
  sim::Simulation sim;
  Network net(sim);
  EXPECT_DOUBLE_EQ(net.mean_mbps(), 0.0);
}

TEST(NetworkTest, JitterWorksWithoutLoss) {
  // Regression: set_jitter() used to be a silent no-op unless set_loss() had
  // installed the fault RNG first.
  sim::Simulation sim;
  Network net(sim, {.telemetry_latency = microseconds(80)});
  net.set_jitter(milliseconds(5));
  std::vector<sim::TimePoint> deliveries;
  for (int i = 0; i < 50; ++i) {
    net.send(Channel::kCpuTelemetry, 64, [&] { deliveries.push_back(sim.now()); });
  }
  sim.run_all();
  ASSERT_EQ(deliveries.size(), 50u);
  bool any_jittered = false;
  for (const sim::TimePoint t : deliveries) {
    EXPECT_GE(t, microseconds(80));
    EXPECT_LE(t, microseconds(80) + milliseconds(5));
    if (t > microseconds(80)) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered) << "jitter silently resolved to zero";
}

TEST(NetworkTest, PartitionDropsAddressedTrafficBothWays) {
  sim::Simulation sim;
  Network net(sim);
  net.partition(0, kControllerEndpoint);
  int to_node = 0, to_controller = 0, unaddressed = 0, other_node = 0;
  net.send_to(Channel::kControlRpc, kControllerEndpoint, 0, 64,
              [&] { ++to_node; });
  net.send_to(Channel::kCpuTelemetry, 0, kControllerEndpoint, 64,
              [&] { ++to_controller; });
  net.send_to(Channel::kCpuTelemetry, 1, kControllerEndpoint, 64,
              [&] { ++other_node; });
  net.send(Channel::kCpuTelemetry, 64, [&] { ++unaddressed; });
  sim.run_all();
  EXPECT_EQ(to_node, 0);
  EXPECT_EQ(to_controller, 0);
  EXPECT_EQ(other_node, 1) << "only the partitioned node is cut off";
  EXPECT_EQ(unaddressed, 1) << "unaddressed traffic never partitions";
  EXPECT_EQ(net.dropped_messages(), 2u);
  // Bytes were accounted before the drop (the NIC transmitted them).
  EXPECT_EQ(net.stats(Channel::kControlRpc).bytes, 64u);

  net.heal(0, kControllerEndpoint);
  net.send_to(Channel::kCpuTelemetry, 0, kControllerEndpoint, 64,
              [&] { ++to_controller; });
  sim.run_all();
  EXPECT_EQ(to_controller, 1) << "heal restores delivery";
}

TEST(NetworkTest, SetLinkDownIsDirected) {
  sim::Simulation sim;
  Network net(sim);
  net.set_link_down(0, kControllerEndpoint, true);
  EXPECT_FALSE(net.link_up(0, kControllerEndpoint));
  EXPECT_TRUE(net.link_up(kControllerEndpoint, 0));
  int up_leg = 0, down_leg = 0;
  net.send_to(Channel::kCpuTelemetry, 0, kControllerEndpoint, 64,
              [&] { ++down_leg; });
  net.send_to(Channel::kControlRpc, kControllerEndpoint, 0, 64,
              [&] { ++up_leg; });
  sim.run_all();
  EXPECT_EQ(down_leg, 0);
  EXPECT_EQ(up_leg, 1);
}

TEST(NetworkTest, RpcToRequestLossSilencesCall) {
  sim::Simulation sim;
  Network net(sim);
  net.set_fault_rng(sim::Rng(5));
  net.set_drop_rate(Channel::kControlRpc, 1.0 - 1e-12);
  int requests = 0, responses = 0;
  net.rpc_to(kControllerEndpoint, 0, 100, 50,
             [&] { ++requests; return true; }, [&] { ++responses; });
  sim.run_all();
  EXPECT_EQ(requests, 0);
  EXPECT_EQ(responses, 0) << "no response leg for a lost request";
  // Request bytes were accounted even though delivery failed.
  EXPECT_EQ(net.stats(Channel::kControlRpc).bytes, 100u);
}

TEST(NetworkTest, RpcToDeadReceiverNeverResponds) {
  sim::Simulation sim;
  Network net(sim);
  int requests = 0, responses = 0;
  net.rpc_to(kControllerEndpoint, 0, 100, 50,
             [&] { ++requests; return false; },  // receiver process is gone
             [&] { ++responses; });
  sim.run_all();
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(responses, 0);
  // Only the request leg was accounted — a dead process sends nothing back.
  EXPECT_EQ(net.stats(Channel::kControlRpc).bytes, 100u);
}

TEST(NetworkTest, DuplicateFaultDeliversTwice) {
  sim::Simulation sim;
  Network net(sim);
  net.set_fault_rng(sim::Rng(6));
  net.set_duplicate_rate(Channel::kControlRpc, 1.0 - 1e-12);
  int requests = 0;
  net.rpc_to(kControllerEndpoint, 0, 100, 50, [&] { ++requests; return true; },
             [] {});
  sim.run_all();
  EXPECT_EQ(requests, 2) << "receiver must handle duplicated requests";
  EXPECT_GE(net.duplicated_messages(), 1u);
}

TEST(NetworkTest, DelaySpikeAddsLatency) {
  sim::Simulation sim;
  Network net(sim, {.telemetry_latency = microseconds(80)});
  net.set_fault_rng(sim::Rng(7));
  net.set_delay_spike(Channel::kCpuTelemetry, 1.0 - 1e-12, milliseconds(10));
  sim::TimePoint delivered_at = -1;
  net.send_to(Channel::kCpuTelemetry, 0, kControllerEndpoint, 64,
              [&] { delivered_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(delivered_at, microseconds(80) + milliseconds(10));
}

TEST(NetworkTest, ChannelNames) {
  EXPECT_STREQ(channel_name(Channel::kCpuTelemetry), "cpu-telemetry");
  EXPECT_STREQ(channel_name(Channel::kMemoryEvent), "memory-event");
  EXPECT_STREQ(channel_name(Channel::kControlRpc), "control-rpc");
  EXPECT_STREQ(channel_name(Channel::kRegistration), "registration");
}

TEST(NetworkTest, DirectionalByteAccountingReconciles) {
  // Every byte handed to a NIC is either delivered or dropped, and per-
  // endpoint tx/rx totals reconcile with the aggregates — through partitions
  // (dropped), duplicate faults (bytes cross the wire once), and both the
  // addressed and data-plane entry points.
  sim::Simulation sim;
  Network net(sim);
  net.set_fault_rng(sim::Rng(11));
  net.set_duplicate_rate(Channel::kCpuTelemetry, 1.0 - 1e-12);
  net.set_link_down(0, 1, true);

  int delivered = 0;
  net.send_to(Channel::kControlRpc, 0, 1, 400, [&] { ++delivered; });   // lost
  net.send_to(Channel::kControlRpc, 1, 0, 300, [&] { ++delivered; });   // ok
  net.send_to(Channel::kCpuTelemetry, 2, 3, 50, [&] { ++delivered; });  // dup
  net.send_flow(Channel::kAppData, 2, 3, 7, 8, 1'000, [&] { ++delivered; });
  sim.run_all();

  EXPECT_EQ(delivered, 4);  // the duplicate delivers twice, counts once below
  EXPECT_EQ(net.egress_bytes(), 1'750u);
  EXPECT_EQ(net.dropped_bytes(), 400u);
  EXPECT_EQ(net.ingress_bytes(), 1'350u);
  EXPECT_EQ(net.egress_bytes(), net.ingress_bytes() + net.dropped_bytes());

  EXPECT_EQ(net.endpoint_stats(0).tx_bytes, 400u);
  EXPECT_EQ(net.endpoint_stats(0).rx_bytes, 300u);
  EXPECT_EQ(net.endpoint_stats(1).tx_bytes, 300u);
  EXPECT_EQ(net.endpoint_stats(1).rx_bytes, 0u);  // the 400 never arrived
  EXPECT_EQ(net.endpoint_stats(2).tx_bytes, 1'050u);
  EXPECT_EQ(net.endpoint_stats(3).rx_bytes, 1'050u);
  std::uint64_t tx = 0, rx = 0;
  for (const EndpointId ep : {0, 1, 2, 3}) {
    tx += net.endpoint_stats(ep).tx_bytes;
    rx += net.endpoint_stats(ep).rx_bytes;
  }
  EXPECT_EQ(tx, net.egress_bytes());
  EXPECT_EQ(rx, net.ingress_bytes());
}

TEST(NetworkTest, DirectionalCountersMirrorIntoObs) {
  sim::Simulation sim;
  Network net(sim);
  obs::MetricsRegistry registry;
  net.attach_metrics(registry);
  net.set_link_down(0, 1, true);
  net.send_to(Channel::kControlRpc, 0, 1, 250, [] {});  // dropped
  net.send_to(Channel::kControlRpc, 1, 0, 150, [] {});  // delivered
  sim.run_all();
  EXPECT_EQ(registry.find_counter("net.egress_bytes")->value(), 400u);
  EXPECT_EQ(registry.find_counter("net.ingress_bytes")->value(), 150u);
  EXPECT_EQ(registry.find_counter("net.dropped_bytes")->value(), 250u);
}

}  // namespace
}  // namespace escra::net
