#include "net/network.h"

#include <gtest/gtest.h>

namespace escra::net {
namespace {

using sim::microseconds;
using sim::milliseconds;

TEST(NetworkTest, SendDeliversAfterChannelLatency) {
  sim::Simulation sim;
  Network net(sim, {.telemetry_latency = microseconds(80),
                    .rpc_latency = microseconds(150)});
  sim::TimePoint telemetry_at = -1, rpc_at = -1;
  net.send(Channel::kCpuTelemetry, 64, [&] { telemetry_at = sim.now(); });
  net.send(Channel::kControlRpc, 128, [&] { rpc_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(telemetry_at, microseconds(80));
  EXPECT_EQ(rpc_at, microseconds(150));
}

TEST(NetworkTest, PerChannelAccounting) {
  sim::Simulation sim;
  Network net(sim);
  net.send(Channel::kCpuTelemetry, 100, [] {});
  net.send(Channel::kCpuTelemetry, 100, [] {});
  net.send(Channel::kMemoryEvent, 50, [] {});
  sim.run_all();
  EXPECT_EQ(net.stats(Channel::kCpuTelemetry).messages, 2u);
  EXPECT_EQ(net.stats(Channel::kCpuTelemetry).bytes, 200u);
  EXPECT_EQ(net.stats(Channel::kMemoryEvent).bytes, 50u);
  EXPECT_EQ(net.stats(Channel::kRegistration).messages, 0u);
  EXPECT_EQ(net.total_bytes(), 250u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(NetworkTest, RpcRoundTripOrdering) {
  sim::Simulation sim;
  Network net(sim, {.rpc_latency = microseconds(100)});
  sim::TimePoint request_at = -1, response_at = -1;
  net.rpc(
      200, 80, [&] { request_at = sim.now(); },
      [&] { response_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(request_at, microseconds(100));
  EXPECT_EQ(response_at, microseconds(200));
  EXPECT_EQ(net.stats(Channel::kControlRpc).bytes, 280u);
  EXPECT_EQ(net.stats(Channel::kControlRpc).messages, 2u);
}

TEST(NetworkTest, SubSecondControlLoopIsFeasible) {
  // The paper's core premise: a telemetry + decision + limit-update cycle
  // completes in well under one CFS period.
  sim::Simulation sim;
  Network net(sim);
  sim::TimePoint done = -1;
  net.send(Channel::kCpuTelemetry, 66, [&] {
    net.rpc(280, 120, [&] { done = sim.now(); }, [] {});
  });
  sim.run_all();
  EXPECT_LT(done, milliseconds(1));
}

TEST(NetworkTest, PeakBandwidthOverWindow) {
  sim::Simulation sim;
  Network net(sim, {.bandwidth_window = milliseconds(100)});
  // 10 KB in the first window, 1 KB later.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * milliseconds(5),
                    [&] { net.send(Channel::kCpuTelemetry, 1024, [] {}); });
  }
  sim.schedule_at(milliseconds(500),
                  [&] { net.send(Channel::kCpuTelemetry, 1024, [] {}); });
  sim.run_all();
  // Peak window saw 10 KiB -> 10*1024*8 bits / 0.1 s = 819.2 kbps.
  EXPECT_NEAR(net.peak_mbps(), 0.8192, 1e-6);
}

TEST(NetworkTest, MeanBandwidthOverRun) {
  sim::Simulation sim;
  Network net(sim);
  net.send(Channel::kCpuTelemetry, 125000, [] {});  // 1 Mbit
  sim.run_all();
  sim.run_until(sim::seconds(1));
  EXPECT_NEAR(net.mean_mbps(), 1.0, 1e-6);
}

TEST(NetworkTest, ZeroElapsedMeanIsZero) {
  sim::Simulation sim;
  Network net(sim);
  EXPECT_DOUBLE_EQ(net.mean_mbps(), 0.0);
}

TEST(NetworkTest, ChannelNames) {
  EXPECT_STREQ(channel_name(Channel::kCpuTelemetry), "cpu-telemetry");
  EXPECT_STREQ(channel_name(Channel::kMemoryEvent), "memory-event");
  EXPECT_STREQ(channel_name(Channel::kControlRpc), "control-rpc");
  EXPECT_STREQ(channel_name(Channel::kRegistration), "registration");
}

}  // namespace
}  // namespace escra::net
