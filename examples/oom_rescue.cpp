// Event-driven OOM rescue: the kernel-hook mechanism in isolation.
//
// A container's working set outgrows its memory limit. Without Escra, the
// try_charge() overflow summons the OOM killer: the container dies, drops
// its work, and pays a multi-second restart. With Escra, the pre-OOM kernel
// hook asks the Controller for memory before the kill; the Resource
// Allocator grants pages from the Distributed Container's pool (reclaiming
// slack from neighbours when the pool is dry), and the container keeps
// running after a sub-millisecond stall.
//
// This example runs both scenarios side by side and prints the timeline.
//
// Run:  build/examples/oom_rescue

#include <cstdio>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/event_queue.h"

using namespace escra;
using memcg::kMiB;

namespace {

struct Outcome {
  bool survived = false;
  std::uint64_t kills = 0;
  std::uint64_t rescues = 0;
  double work_done_s = 0.0;
};

Outcome run_scenario(bool with_escra) {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  k8s.add_node({});

  // Two containers: `worker` will outgrow its limit; `neighbour` idles with
  // plenty of slack that Escra can reclaim.
  cluster::ContainerSpec worker_spec;
  worker_spec.name = "worker";
  worker_spec.base_memory = 64 * kMiB;
  cluster::Container& worker =
      k8s.create_container(worker_spec, 2.0, 128 * kMiB);
  cluster::ContainerSpec neighbour_spec;
  neighbour_spec.name = "neighbour";
  neighbour_spec.base_memory = 64 * kMiB;
  cluster::Container& neighbour =
      k8s.create_container(neighbour_spec, 1.0, 512 * kMiB);

  std::unique_ptr<core::EscraSystem> escra;
  if (with_escra) {
    escra = std::make_unique<core::EscraSystem>(simulation, network, k8s,
                                                /*global_cpu=*/4.0,
                                                /*global_mem=*/768 * kMiB);
    escra->manage({&worker, &neighbour});
    escra->start();
  }

  // The worker's phases allocate 60 MiB each on top of its 64 MiB base and
  // overlap in pairs — the second concurrent working set exceeds the
  // 128 MiB limit the moment it starts executing.
  int phases_done = 0;
  const sim::TimePoint starts[] = {sim::seconds_f(1.0), sim::seconds_f(1.2),
                                   sim::seconds_f(6.0), sim::seconds_f(6.2)};
  for (int phase = 0; phase < 4; ++phase) {
    simulation.schedule_at(starts[phase], [&worker, &phases_done,
                                           &simulation, phase] {
      const bool accepted = worker.submit(
          sim::milliseconds(500), 60 * kMiB, [&, phase](bool ok) {
            std::printf("  t=%5.2fs  phase %d %s\n",
                        sim::to_seconds(simulation.now()), phase,
                        ok ? "completed" : "DROPPED (container killed)");
            phases_done += ok;
          });
      if (!accepted) {
        std::printf("  t=%5.2fs  phase %d REJECTED (container restarting)\n",
                    sim::to_seconds(simulation.now()), phase);
      }
    });
  }

  simulation.run_until(sim::seconds(12));

  Outcome outcome;
  outcome.survived = worker.oom_kill_count() == 0;
  outcome.kills = worker.oom_kill_count();
  outcome.rescues = escra ? escra->controller().oom_rescues()
                          : worker.mem_cgroup().oom_rescues();
  outcome.work_done_s = phases_done * 0.5;
  if (escra) {
    std::printf("  neighbour limit after reclamation: %lld MiB (was 512)\n",
                static_cast<long long>(neighbour.mem_cgroup().limit() / kMiB));
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Scenario 1: vanilla cgroup limits (no Escra) ===\n");
  const Outcome vanilla = run_scenario(false);

  std::printf("\n=== Scenario 2: Escra pre-OOM kernel hook ===\n");
  const Outcome rescued = run_scenario(true);

  std::printf("\n%-28s %12s %12s\n", "", "vanilla", "escra");
  std::printf("%-28s %12llu %12llu\n", "OOM kills",
              static_cast<unsigned long long>(vanilla.kills),
              static_cast<unsigned long long>(rescued.kills));
  std::printf("%-28s %12llu %12llu\n", "OOM rescues",
              static_cast<unsigned long long>(vanilla.rescues),
              static_cast<unsigned long long>(rescued.rescues));
  std::printf("%-28s %12.1f %12.1f\n", "work completed (core-s)",
              vanilla.work_done_s, rescued.work_done_s);
  std::printf(
      "\nThe rescue costs a sub-millisecond controller round trip; the kill\n"
      "costs the dropped work plus a multi-second restart (Section III).\n");
  return 0;
}
