// Microservice autoscaling: the paper's headline comparison on one cell of
// the evaluation grid, end to end through the public API.
//
// Deploys the 11-container HipsterShop benchmark on a 3-node cluster and
// runs the bursty workload (50 req/s with 650 req/s bursts) three times:
// under static-1.5x limits, under the Autopilot recreation, and under
// Escra. Prints throughput, tail latency, and slack side by side — the
// performance/cost-efficiency trade-off of Section VI-B, and how Escra
// escapes it.
//
// Run:  build/examples/microservice_autoscaling

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"

using namespace escra;

int main() {
  exp::print_section("HipsterShop under a bursty workload, three policies");
  std::printf("deploying 11 containers on 3x20-core workers; profiling, then\n"
              "running 60 s of load per policy...\n\n");

  std::vector<std::vector<std::string>> rows;
  for (const auto policy :
       {exp::PolicyKind::kStatic, exp::PolicyKind::kAutopilot,
        exp::PolicyKind::kEscra}) {
    exp::MicroserviceConfig cfg;
    cfg.benchmark = app::Benchmark::kHipster;
    cfg.workload = workload::WorkloadKind::kBurst;
    cfg.policy = policy;
    const exp::RunResult r = exp::run_microservice(cfg);
    rows.push_back({r.policy_name, exp::fmt(r.throughput_rps, 1),
                    exp::fmt(r.p50_latency_ms, 1),
                    exp::fmt(r.p999_latency_ms, 1),
                    exp::fmt(r.cpu_slack_cores.percentile(50), 2),
                    exp::fmt(r.mem_slack_mib.percentile(50), 1),
                    std::to_string(r.oom_kills), std::to_string(r.failed)});
  }
  exp::print_table({"policy", "tput req/s", "p50 ms", "p99.9 ms",
                    "cpu-slack p50 (cores)", "mem-slack p50 (MiB)", "ooms",
                    "fails"},
                   rows);

  std::printf(
      "\nWhat to look for: static buys its performance with slack (the\n"
      "resources you pay for but never use); Autopilot's 1-second control\n"
      "loop still misses the burst onset (tail latency); Escra reacts within\n"
      "CFS periods, holding both tail latency and slack down at once.\n");
  return 0;
}
