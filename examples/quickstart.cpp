// Quickstart: deploy a small microservice application under Escra and watch
// fine-grained allocation track demand.
//
// Builds a simulated 3-node cluster, deploys the 7-container Teastore
// benchmark as one Distributed Container (12 cores / 4 GiB global limits),
// drives it with a Poisson workload, and prints per-container limits vs
// usage plus the end-to-end latency distribution.
//
// Run:  build/examples/quickstart

#include <cstdio>

#include "app/benchmarks.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

using namespace escra;

int main() {
  sim::Simulation simulation;
  net::Network network(simulation);

  // A control node plus three 20-core workers (the control node runs no
  // containers, so only the workers are modelled).
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 3; ++i) k8s.add_node(cluster::NodeConfig{.cores = 20.0});

  // Deploy Teastore: 7 containers behind one entry point.
  sim::Rng rng(1);
  app::Application teastore(k8s, app::make_teastore(), rng.fork(),
                            /*initial_cores=*/1.0,
                            /*initial_mem=*/256 * memcg::kMiB);

  // Hand the whole application to Escra as one Distributed Container:
  // 8 cores and 4 GiB, shared across all 7 containers at runtime.
  core::EscraSystem escra(simulation, network, k8s, /*global_cpu=*/12.0,
                          /*global_mem=*/4 * memcg::kGiB);
  escra.manage(teastore.containers());
  escra.start();

  // Load: Poisson arrivals at 250 req/s for 30 seconds, starting once the
  // containers have finished their startup warmup.
  workload::LoadGenerator loadgen(
      simulation,
      std::make_unique<workload::ExpArrivals>(250.0, rng.fork()),
      [&teastore](workload::LoadGenerator::Done done) {
        teastore.submit_request(std::move(done));
      });
  loadgen.run(sim::seconds(5), sim::seconds(35));

  // Print the allocation picture once per 10 simulated seconds.
  simulation.schedule_every(sim::seconds(10), sim::seconds(10), [&] {
    std::printf("t=%2.0fs  %-18s %7s %7s %9s %9s\n",
                sim::to_seconds(simulation.now()), "container", "lim(c)",
                "use(c)", "lim(MiB)", "use(MiB)");
    for (const cluster::Container* c : teastore.containers()) {
      std::printf("       %-18s %7.2f %7.2f %9lld %9lld\n", c->name().c_str(),
                  c->cpu_cgroup().limit_cores(),
                  static_cast<double>(c->cpu_cgroup().consumed_this_period()) /
                      static_cast<double>(c->cpu_cgroup().period()),
                  static_cast<long long>(c->mem_cgroup().limit() / memcg::kMiB),
                  static_cast<long long>(c->mem_cgroup().usage() / memcg::kMiB));
    }
    std::printf("       app allocated: %.2f / %.2f cores, %lld / %lld MiB\n\n",
                escra.app().cpu_allocated(), escra.app().cpu_limit(),
                static_cast<long long>(escra.app().mem_allocated() / memcg::kMiB),
                static_cast<long long>(escra.app().mem_limit() / memcg::kMiB));
  });

  simulation.run_until(sim::seconds(37));

  const sim::Histogram& lat = loadgen.latency();
  std::printf("requests: %llu ok, %llu failed, %.1f req/s\n",
              static_cast<unsigned long long>(loadgen.succeeded()),
              static_cast<unsigned long long>(loadgen.failed()),
              loadgen.throughput_rps());
  std::printf("latency ms: mean %.2f  p50 %.2f  p99 %.2f  p99.9 %.2f\n",
              lat.mean() / 1000.0,
              static_cast<double>(lat.percentile(50)) / 1000.0,
              static_cast<double>(lat.percentile(99)) / 1000.0,
              static_cast<double>(lat.percentile(99.9)) / 1000.0);
  std::printf("controller: %llu stats, %llu limit updates, %llu OOM rescues\n",
              static_cast<unsigned long long>(escra.controller().stats_received()),
              static_cast<unsigned long long>(
                  escra.controller().limit_updates_sent()),
              static_cast<unsigned long long>(escra.controller().oom_rescues()));
  std::printf("network: peak %.2f Mbps, mean %.2f Mbps\n", network.peak_mbps(),
              network.mean_mbps());
  return 0;
}
