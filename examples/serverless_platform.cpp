// Serverless integration: OpenWhisk + Escra (Section IV-E), built from the
// individual public APIs rather than the experiment harness so the wiring
// is visible:
//
//   1. create a cluster and an EscraSystem whose Distributed Container is
//      the openwhisk namespace (per-pod defaults x pool size);
//   2. enable the Container Watcher so action pods are adopted the moment
//      the invoker creates them, and release pods when they are reaped;
//   3. register an action and drive invocations;
//   4. watch aggregate limits: static 1 vCPU / 256 MiB per pod under
//      OpenWhisk alone vs right-sized limits under Escra.
//
// Run:  build/examples/serverless_platform

#include <cstdio>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "serverless/apps.h"
#include "serverless/openwhisk.h"
#include "sim/histogram.h"
#include "sim/rng.h"

using namespace escra;

int main() {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 3; ++i) {
    k8s.add_node(cluster::NodeConfig{.cores = 16.0,
                                     .memory_capacity = 64LL * memcg::kGiB});
  }

  // The openwhisk namespace as one Distributed Container: the invoker's
  // containerPool allows 16 pods x (1 vCPU, 256 MiB).
  serverless::OpenWhiskConfig ow_cfg;
  ow_cfg.max_pods = 16;
  core::EscraConfig escra_cfg;
  escra_cfg.upsilon = 35.0;  // short-lived actions: scale up faster (VI-F)
  core::EscraSystem escra(
      simulation, network, k8s,
      ow_cfg.pod_cpu * static_cast<double>(ow_cfg.max_pods),
      static_cast<memcg::Bytes>(ow_cfg.pod_mem) * ow_cfg.max_pods, escra_cfg);
  escra.watch();   // adopt pods as they are created
  escra.start();   // reclamation loop on

  serverless::OpenWhisk openwhisk(simulation, k8s, ow_cfg, sim::Rng(21));
  openwhisk.set_pod_reap_hook(
      [&](cluster::Container& c) { escra.release(c); });
  openwhisk.register_action(serverless::make_image_process_action());

  // One request every 0.8 s (the paper's ImageProcess workload).
  std::uint64_t ok = 0, failed = 0;
  sim::Histogram latency;
  simulation.schedule_every(0, sim::milliseconds(800), [&] {
    if (simulation.now() >= sim::seconds(120)) return;
    const sim::TimePoint issued = simulation.now();
    openwhisk.invoke("image-process", [&, issued](bool o) {
      if (o) {
        ++ok;
        latency.record(std::max<sim::TimePoint>(1, simulation.now() - issued));
      } else {
        ++failed;
      }
    });
  });

  std::printf("%8s %6s %6s %10s %12s %14s\n", "time_s", "pods", "busy",
              "cpu-limit", "mem-limit-MiB", "oom-rescues");
  simulation.schedule_every(sim::seconds(15), sim::seconds(15), [&] {
    std::printf("%8.0f %6zu %6zu %10.2f %12.0f %14llu\n",
                sim::to_seconds(simulation.now()), openwhisk.pod_count(),
                openwhisk.busy_pods(), openwhisk.aggregate_cpu_limit(),
                static_cast<double>(openwhisk.aggregate_mem_limit()) /
                    static_cast<double>(memcg::kMiB),
                static_cast<unsigned long long>(
                    escra.controller().oom_rescues()));
  });

  simulation.run_until(sim::seconds(135));

  std::printf("\ninvocations: %llu ok, %llu failed, %llu cold starts\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(openwhisk.cold_starts()));
  std::printf("latency: mean %.0f ms, p99 %.0f ms\n", latency.mean() / 1000.0,
              static_cast<double>(latency.percentile(99)) / 1000.0);
  std::printf("static OpenWhisk would reserve %zu vCPU / %lld MiB for this "
              "pool;\nEscra's right-sized aggregate is shown above.\n",
              openwhisk.pod_count(),
              static_cast<long long>(openwhisk.pod_count() * 256));
  return 0;
}
