// Multi-tenancy with Distributed Containers (Section VII).
//
// Two tenants share the same worker nodes, each as its own Distributed
// Container with its own Escra control plane and its own aggregate limits.
// Tenant A runs a steady service; tenant B misbehaves — it bursts hard and
// grows memory. The demonstration: B is confined to its global limits at
// runtime (it throttles and reclaims *within* its own budget), while A's
// latency and allocations stay untouched. A UsageAccountant meters both,
// showing what each tenant would be billed under reservation- vs
// usage-based pricing.
//
// Run:  build/examples/multi_tenant

#include <cstdio>

#include "cluster/cluster.h"
#include "core/accounting.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/histogram.h"
#include "sim/rng.h"

using namespace escra;
using memcg::kGiB;
using memcg::kMiB;

int main() {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 2; ++i) k8s.add_node(cluster::NodeConfig{.cores = 16.0});

  // --- tenant A: a steady 2-container service, 6-core / 2 GiB budget ---
  cluster::ContainerSpec spec;
  spec.base_memory = 128 * kMiB;
  spec.name = "a-front";
  cluster::Container& a_front = k8s.create_container(spec, 1.0, 512 * kMiB);
  spec.name = "a-back";
  cluster::Container& a_back = k8s.create_container(spec, 1.0, 512 * kMiB);
  core::EscraSystem tenant_a(simulation, network, k8s, 6.0, 2 * kGiB);
  tenant_a.manage({&a_front, &a_back});
  tenant_a.start();

  // --- tenant B: two containers that burst and hog, 4-core / 1 GiB budget ---
  spec.name = "b-burst";
  spec.max_parallelism = 8.0;
  cluster::Container& b_burst = k8s.create_container(spec, 1.0, 512 * kMiB);
  spec.name = "b-hog";
  cluster::Container& b_hog = k8s.create_container(spec, 1.0, 512 * kMiB);
  core::EscraSystem tenant_b(simulation, network, k8s, 4.0, 1 * kGiB);
  tenant_b.manage({&b_burst, &b_hog});
  tenant_b.start();

  core::UsageAccountant accountant(simulation);
  accountant.track(a_front, "tenant-a");
  accountant.track(a_back, "tenant-a");
  accountant.track(b_burst, "tenant-b");
  accountant.track(b_hog, "tenant-b");

  // Tenant A: gentle steady request flow, 100 req/s through front -> back.
  sim::Rng rng(5);
  sim::Histogram a_latency;
  simulation.schedule_every(sim::milliseconds(10), sim::milliseconds(10), [&] {
    const sim::TimePoint t0 = simulation.now();
    a_front.submit(sim::milliseconds(3), 2 * kMiB, [&, t0](bool ok_front) {
      if (!ok_front) return;
      a_back.submit(sim::milliseconds(4), 2 * kMiB, [&, t0](bool ok_back) {
        if (ok_back) a_latency.record(std::max<sim::TimePoint>(1, simulation.now() - t0));
      });
    });
  });

  // Tenant B: 10-second CPU storms every 20 s plus relentless memory growth.
  simulation.schedule_every(sim::milliseconds(20), sim::milliseconds(20), [&] {
    const auto phase = simulation.now() % sim::seconds(20);
    if (phase < sim::seconds(10)) {
      b_burst.submit(sim::milliseconds(120), 4 * kMiB, nullptr);  // ~6 cores wanted
    }
  });
  simulation.schedule_every(sim::seconds(1), sim::seconds(1),
                            [&] { b_hog.adjust_resident(24 * kMiB); });

  std::printf("%7s | %19s | %19s\n", "", "tenant A (6c/2GiB)",
              "tenant B (4c/1GiB)");
  std::printf("%7s | %9s %9s | %9s %9s\n", "time_s", "cpu-alloc", "mem-MiB",
              "cpu-alloc", "mem-MiB");
  simulation.schedule_every(sim::seconds(10), sim::seconds(10), [&] {
    std::printf("%7.0f | %9.2f %9lld | %9.2f %9lld\n",
                sim::to_seconds(simulation.now()), tenant_a.app().cpu_allocated(),
                static_cast<long long>(tenant_a.app().mem_allocated() / kMiB),
                tenant_b.app().cpu_allocated(),
                static_cast<long long>(tenant_b.app().mem_allocated() / kMiB));
  });

  simulation.run_until(sim::seconds(60));

  std::printf("\ntenant A latency: p50 %.1f ms, p99.9 %.1f ms  (undisturbed "
              "by B's storms)\n",
              static_cast<double>(a_latency.percentile(50)) / 1000.0,
              static_cast<double>(a_latency.percentile(99.9)) / 1000.0);
  std::printf("tenant B: burst container throttled within its own budget; "
              "hog OOM-killed %llu time(s)\nonce tenant B's pool was truly "
              "exhausted — tenant A was never touched.\n",
              static_cast<unsigned long long>(b_hog.oom_kill_count()));

  std::printf("\nbilling (rates: $0.04/core-hr, $0.005/GiB-hr):\n");
  const double core_rate = 0.04 / 3600.0, gib_rate = 0.005 / 3600.0;
  for (const char* tenant : {"tenant-a", "tenant-b"}) {
    const core::UsageBill& bill = accountant.bill(tenant);
    std::printf(
        "  %-9s reserved $%.6f  used $%.6f  (cpu util %.0f%%, mem util %.0f%%)\n",
        tenant, bill.cost_reserved(core_rate, gib_rate),
        bill.cost_used(core_rate, gib_rate), 100.0 * bill.cpu_utilization(),
        100.0 * bill.mem_utilization());
  }
  std::printf("with Escra the reserved bill approaches the used bill — the\n"
              "Distributed Container doubles as a billing boundary (Sec VII).\n");
  return 0;
}
