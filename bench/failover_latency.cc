// Failover latency — the measurement behind the replicated-controller
// claim: a permanently killed leader must be replaced by a warm standby in
// well under a second, without the cluster ever noticing. Contrast with the
// single-controller story, where the same kill means a full downtime window
// (agents fail static, decisions stop) followed by a restart-and-resync.
//
// Two faulted runs of the TeaStore graph (3 nodes, fixed 200 req/s,
// identical seeds), leader killed at 15 s in both:
//   restart-resync  no standbys; the Controller restarts after 5 s downtime
//                   and rebuilds by resyncing every Agent — the pre-HA
//                   recovery path (recovery_latency.cc measures its MTTR)
//   ha-failover     two warm standbys stream the leader's WAL; the kill is
//                   permanent, a standby's lease watchdog fires and takes
//                   the seat over by replaying its replica — no resync
//
// For the HA run the timeline decomposes from the decision trace:
//   detection  kill -> kLeaderElected   (lease timeout + watchdog grid)
//   MTTR       kLeaderElected -> first kRpcApplied landing on an Agent
//              (takeover-to-first-reallocation: the new leader is not just
//              elected but provably moving cgroups again)
//   blackout   kill -> first post-kill kRpcApplied — the longest the
//              cluster went without a working control plane
//
// The warm-standby guarantees are asserted directly on the clean-failover
// run: zero OOM kills, zero fail-static entries (takeover beats the Agents'
// 500 ms lease watchdog, so no node ever freezes), zero fenced updates (the
// old leader is dead, not partitioned — nothing stale survives to fence),
// and MTTR under one simulated second. Determinism is asserted by running
// the identical-seed HA scenario twice and comparing an FNV-1a digest over
// every trace event and every 100 ms aggregate-limit sample: byte-identical
// or the bench fails.
//
//   failover_latency [--assert]
//
// With --assert the process exits non-zero unless every check passes —
// this is the mode CI runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "app/benchmarks.h"
#include "app/service_graph.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "fault/fault_injector.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/load_generator.h"

using namespace escra;

namespace {

constexpr std::uint64_t kSeed = 7;
constexpr double kRateRps = 200.0;
constexpr sim::TimePoint kLoadStart = sim::seconds(2);
constexpr sim::TimePoint kLoadEnd = sim::seconds(38);
constexpr sim::TimePoint kRunEnd = sim::seconds(40);
constexpr sim::Duration kSampleInterval = sim::milliseconds(100);
constexpr sim::TimePoint kKillAt = sim::seconds(15);
constexpr sim::Duration kRestartDowntime = sim::seconds(5);
constexpr int kStandbys = 2;
constexpr sim::Duration kMttrTarget = sim::seconds(1);

enum class Scenario { kRestartResync, kHaFailover };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kRestartResync: return "restart-resync";
    case Scenario::kHaFailover: return "ha-failover";
  }
  return "?";
}

struct RunResult {
  std::uint64_t total_oom_kills = 0;
  std::uint64_t fail_static_entries = 0;
  std::uint64_t fenced_updates = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t failovers = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t replayed_slots = 0;

  sim::TimePoint elected = 0;      // first kLeaderElected (HA run), else 0
  sim::TimePoint first_apply = 0;  // first kRpcApplied at/after recovery
  sim::TimePoint recovery_from = 0;  // elected (HA) / restart instant

  // FNV-1a over every trace event and aggregate-limit sample: two
  // identical-seed runs must produce the same digest bit for bit.
  std::uint64_t digest = 1469598103934665603ULL;
};

void mix(RunResult& r, std::uint64_t v) {
  r.digest ^= v;
  r.digest *= 1099511628211ULL;
}

std::uint64_t bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof out);
  return out;
}

RunResult run_scenario(Scenario scenario) {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 3; ++i) k8s.add_node({});

  sim::Rng root(kSeed);
  app::Application application(k8s, app::make_teastore(), root.fork(),
                               /*initial_cores=*/1.0,
                               /*initial_mem=*/512 * memcg::kMiB);
  core::EscraSystem escra(simulation, network, k8s, /*global_cpu=*/12.0,
                          /*global_mem=*/8 * memcg::kGiB);
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(application.containers());
  escra.start();

  // Declared after the system: destroyed first, detaching its hook.
  std::optional<ha::HaControlPlane> ha;
  if (scenario == Scenario::kHaFailover) {
    ha::HaConfig cfg;
    cfg.standbys = kStandbys;
    ha.emplace(escra, network, cfg);
    ha->start();
  }

  fault::FaultInjector injector(simulation, network, escra);
  if (scenario == Scenario::kRestartResync) {
    injector.inject_controller_crash(kKillAt, kRestartDowntime);
  } else {
    injector.inject_leader_kill(kKillAt);
  }

  workload::LoadGenerator loadgen(
      simulation, std::make_unique<workload::FixedArrivals>(kRateRps),
      [&application](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      });
  loadgen.run(kLoadStart, kLoadEnd);

  RunResult result;
  const auto& containers = application.containers();
  simulation.schedule_every(0, kSampleInterval, [&] {
    double agg = 0.0;
    for (const cluster::Container* c : containers) {
      agg += c->cpu_cgroup().limit_cores();
    }
    mix(result, bits(agg));
  });

  simulation.run_until(kRunEnd);

  for (const cluster::Container* c : containers) {
    result.total_oom_kills += c->oom_kill_count();
  }
  result.resyncs = escra.controller().resyncs();
  if (ha.has_value()) {
    result.failovers = ha->failovers();
    result.final_epoch = ha->epoch();
  }
  result.recovery_from = scenario == Scenario::kRestartResync
                             ? kKillAt + kRestartDowntime
                             : 0;

  const obs::TraceBuffer& trace = observer.trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    mix(result, ev.id);
    mix(result, static_cast<std::uint64_t>(ev.time));
    mix(result, static_cast<std::uint64_t>(ev.kind));
    mix(result, ev.container);
    mix(result, ev.node);
    mix(result, bits(ev.before));
    mix(result, bits(ev.after));
    mix(result, ev.cause);
    mix(result, static_cast<std::uint64_t>(ev.detail));
    switch (ev.kind) {
      case obs::EventKind::kFailStatic:
        if (ev.detail != 0) ++result.fail_static_entries;
        break;
      case obs::EventKind::kEpochFenced:
        ++result.fenced_updates;
        break;
      case obs::EventKind::kLeaderElected:
        if (result.elected == 0) {
          result.elected = ev.time;
          result.recovery_from = ev.time;
          result.replayed_slots = static_cast<std::uint64_t>(ev.after);
        }
        break;
      case obs::EventKind::kRpcApplied:
        if (result.first_apply == 0 && result.recovery_from != 0 &&
            ev.time >= result.recovery_from) {
          result.first_apply = ev.time;
        }
        break;
      default:
        break;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool assert_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert") == 0) {
      assert_mode = true;
    } else {
      std::fprintf(stderr, "usage: failover_latency [--assert]\n");
      return 2;
    }
  }

  std::printf("failover_latency: TeaStore, 3 nodes, fixed %g req/s, leader "
              "killed at %gs\n\n",
              kRateRps, sim::to_seconds(kKillAt));

  bool ok = true;

  // --- single-controller reference: restart after downtime, then resync ---
  const RunResult restart = run_scenario(Scenario::kRestartResync);
  const double restart_blackout =
      restart.first_apply != 0
          ? sim::to_seconds(restart.first_apply - kKillAt)
          : sim::to_seconds(kRunEnd - kKillAt);
  std::printf("%-16s blackout %6.3f s  (downtime %g s + resync; "
              "%llu fail-static entries, %llu resyncs, %llu oom-kills)\n",
              scenario_name(Scenario::kRestartResync), restart_blackout,
              sim::to_seconds(kRestartDowntime),
              static_cast<unsigned long long>(restart.fail_static_entries),
              static_cast<unsigned long long>(restart.resyncs),
              static_cast<unsigned long long>(restart.total_oom_kills));

  // --- warm-standby failover, run twice for the determinism check ---
  const RunResult ha = run_scenario(Scenario::kHaFailover);
  const RunResult ha2 = run_scenario(Scenario::kHaFailover);

  const bool elected = ha.elected != 0;
  const double detection =
      elected ? sim::to_seconds(ha.elected - kKillAt) : -1.0;
  const double mttr = elected && ha.first_apply != 0
                          ? sim::to_seconds(ha.first_apply - ha.elected)
                          : -1.0;
  const double blackout = elected && ha.first_apply != 0
                              ? sim::to_seconds(ha.first_apply - kKillAt)
                              : -1.0;
  std::printf("%-16s blackout %6.3f s  (detection %.1f ms + takeover MTTR "
              "%.1f ms; %llu slot(s) replayed, epoch -> %llu)\n",
              scenario_name(Scenario::kHaFailover), blackout,
              detection * 1e3, mttr * 1e3,
              static_cast<unsigned long long>(ha.replayed_slots),
              static_cast<unsigned long long>(ha.final_epoch));
  std::printf("%-16s %llu fail-static entries, %llu fenced updates, "
              "%llu resyncs, %llu oom-kills, %llu failover(s)\n", "",
              static_cast<unsigned long long>(ha.fail_static_entries),
              static_cast<unsigned long long>(ha.fenced_updates),
              static_cast<unsigned long long>(ha.resyncs),
              static_cast<unsigned long long>(ha.total_oom_kills),
              static_cast<unsigned long long>(ha.failovers));

  if (!elected || ha.failovers != 1) {
    std::printf("  FAIL: expected exactly one takeover (saw %llu)\n",
                static_cast<unsigned long long>(ha.failovers));
    ok = false;
  }
  if (mttr < 0.0 || mttr >= sim::to_seconds(kMttrTarget)) {
    std::printf("  FAIL: takeover-to-first-reallocation MTTR %.3f s not "
                "under %.1f s\n",
                mttr, sim::to_seconds(kMttrTarget));
    ok = false;
  }
  if (blackout < 0.0 || blackout >= restart_blackout) {
    std::printf("  FAIL: HA blackout %.3f s not shorter than the "
                "restart-resync %.3f s\n",
                blackout, restart_blackout);
    ok = false;
  }
  if (ha.total_oom_kills != 0) {
    std::printf("  FAIL: %llu oom-kills during clean failover\n",
                static_cast<unsigned long long>(ha.total_oom_kills));
    ok = false;
  }
  if (ha.fail_static_entries != 0) {
    std::printf("  FAIL: %llu fail-static entries — takeover lost the race "
                "against the agent lease watchdog\n",
                static_cast<unsigned long long>(ha.fail_static_entries));
    ok = false;
  }
  if (ha.fenced_updates != 0) {
    std::printf("  FAIL: %llu fenced updates in a clean (non-partitioned) "
                "failover\n",
                static_cast<unsigned long long>(ha.fenced_updates));
    ok = false;
  }
  if (ha.digest != ha2.digest) {
    std::printf("  FAIL: identical-seed HA runs diverged "
                "(digest %016llx vs %016llx)\n",
                static_cast<unsigned long long>(ha.digest),
                static_cast<unsigned long long>(ha2.digest));
    ok = false;
  } else {
    std::printf("%-16s determinism: identical-seed rerun byte-identical "
                "(digest %016llx)\n", "",
                static_cast<unsigned long long>(ha.digest));
  }

  if (assert_mode && !ok) {
    std::fprintf(stderr, "\nfailover_latency: FAILED\n");
    return 1;
  }
  std::printf("\nfailover_latency: %s\n", ok ? "ok" : "degraded (see above)");
  return 0;
}
