// Figure 9: aggregate CPU and memory limits over a GridSearch run for
// OpenWhisk alone and OpenWhisk+Escra, with the savings series — subfigures
// (a)-(d) of the paper.

#include <cstdio>

#include "exp/report.h"
#include "exp/serverless.h"
#include "sweep/runner.h"

using namespace escra;

int main() {
  // The two configurations are independent simulations; run them on the
  // sweep pool. Results come back ordered by index, so the report below is
  // identical to the old serial run.
  const std::vector<exp::GridSearchResult> results =
      sweep::parallel_map<exp::GridSearchResult>(
          2, /*jobs=*/0, [](std::size_t i) {
            exp::GridSearchConfig cfg;
            cfg.mode = i == 0 ? exp::ServerlessMode::kOpenWhisk
                              : exp::ServerlessMode::kEscra;
            cfg.runs = 3;
            return exp::run_grid_search(cfg);
          });
  const exp::GridSearchResult& ow = results[0];
  const exp::GridSearchResult& es = results[1];

  exp::print_section("Figure 9: GridSearch aggregate limits over the job");
  std::printf("%8s %12s %12s %12s %14s %14s %14s\n", "time_s", "ow_cpu",
              "escra_cpu", "cpu_saving", "ow_mem_MiB", "escra_mem_MiB",
              "mem_saving");
  const std::size_t n = std::min(ow.limits.size(), es.limits.size());
  for (std::size_t i = 0; i < n; i += 15) {
    const auto& a = ow.limits[i];
    const auto& b = es.limits[i];
    std::printf("%8.0f %12.1f %12.1f %12.1f %14.0f %14.0f %14.0f\n",
                a.t_seconds, a.cpu_limit_cores, b.cpu_limit_cores,
                a.cpu_limit_cores - b.cpu_limit_cores, a.mem_limit_mib,
                b.mem_limit_mib, a.mem_limit_mib - b.mem_limit_mib);
  }

  std::printf("\nmeans over the job:\n");
  exp::print_table(
      {"config", "cpu limit (vCPU)", "mem limit (MiB)", "job latency (s)"},
      {{"openwhisk", exp::fmt(ow.mean_cpu_limit_cores, 1),
        exp::fmt(ow.mean_mem_limit_mib, 0), exp::fmt(ow.mean_latency_s, 1)},
       {"escra-openwhisk", exp::fmt(es.mean_cpu_limit_cores, 1),
        exp::fmt(es.mean_mem_limit_mib, 0), exp::fmt(es.mean_latency_s, 1)},
       {"savings",
        exp::fmt(ow.mean_cpu_limit_cores - es.mean_cpu_limit_cores, 1),
        exp::fmt(ow.mean_mem_limit_mib - es.mean_mem_limit_mib, 0), "-"}});
  std::printf(
      "(paper: 113 vCPU / 29087 MiB for OpenWhisk vs 53 vCPU / 22264 MiB\n"
      " with Escra — ~60 vCPU and ~7 GiB saved at the same ~300 s latency)\n");
  return 0;
}
