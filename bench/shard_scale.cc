// Shard-scale benchmark: the sharded control plane at 10k nodes / 100k
// containers, shard counts 1 -> 16.
//
// Each shard is a full EscraSystem owning a slice of the cluster pool; apps
// are routed by consistent hashing (src/shard). The paper's controller
// ingests one CpuStatsMsg per container per CFS period, so the scaling
// question is: does splitting the population across N shards keep the
// per-decision cost flat (no cross-shard coordination on the hot path) and
// multiply aggregate ingest throughput?
//
// Method (single-core host — scaling is *modeled*, and stated as such):
// per period, every shard's telemetry batch is walked serially through its
// own Controller::on_cpu_stats and wall-timed per shard. Each timed pass is
// preceded by one untimed warm pass over the same batch: interleaving N
// shards on one core means every timed batch would otherwise start with the
// shard's hot state freshly evicted by its neighbours and the event-queue
// drain — a cost a resident per-shard controller on its own core never
// pays, and one that grows with N purely as a measurement artifact (cold
// first-touch is ~4-10x the warm steady-state cost). The warm pass is
// applied identically at every shard count, including N = 1, so the
// comparison stays fair. Each shard's representative per-period time is the
// *minimum* across periods (best-of-N): the quantity under test is the
// intrinsic per-decision cost, which is deterministic work, so every
// deviation from the minimum is host noise — and on a shared single-core
// box that noise is not i.i.d. spikes a median would absorb but sustained
// multi-second episodes (page-compaction and reclaim daemons triggered by
// the previous point's 100k-container setup/teardown) that can tax a whole
// measurement window and drag the median of one shard count while leaving
// its neighbours untouched. The min is the standard estimator for exactly
// this regime. With N shards running concurrently the period's cost would
// be the slowest shard, so with T_s = min over periods of shard s's batch
// time and n_s its containers:
//
//   sweep_ms            = max_s T_s (modeled critical path per period)
//   aggregate msgs/s    = msgs per period / max_s T_s
//   decision_ns         = sum_s T_s / msgs per period (per-shard cost)
//   critical ns per c   = max_s (T_s / n_s)
//
// Flatness is asserted per *container* so consistent-hash imbalance (which
// the throughput ratio already pays for honestly) does not masquerade as
// coordination overhead:
//
//   - decision_ns(N) / decision_ns(1)                        <= 1.25
//   - critical-path ns per container (N) / same at N = 1     <= 1.25
//   - aggregate throughput (16 shards) / (1 shard)           >= 8
//
// A determinism phase additionally asserts sweep_parallel checksums are
// identical at --jobs 1 and --jobs 4 on fresh identical planes.
//
//   shard_scale [--out FILE] [--check FILE] [--tolerance X] [--quick]
//
// --quick shrinks to 200 nodes / 2k containers and shard counts {1, 4}
// (functional smoke; the ratio assertions relax accordingly). --check
// compares decision_ns and the throughput ratio against a committed
// baseline JSON and exits 1 on regression beyond --tolerance (default
// 0.25).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/messages.h"
#include "net/network.h"
#include "shard/sharded_control_plane.h"
#include "sim/event_queue.h"

using namespace escra;

namespace {

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ScalePoint {
  int shards = 0;
  std::uint64_t containers = 0;
  std::uint64_t msgs = 0;
  std::uint64_t decisions = 0;
  std::uint64_t max_shard_containers = 0;
  double decision_ns = 0.0;       // sum of per-shard minima / msgs per period
  double sweep_ms = 0.0;          // max-per-shard best batch time
  double critical_ns_per_c = 0.0; // max over shards of best time / containers
  double agg_msgs_per_s = 0.0;    // critical-path-modeled aggregate rate
};

struct Config {
  int nodes = 10'000;
  int apps = 2'000;
  int containers_per_app = 50;
  int periods = 8;
  std::vector<int> shard_counts = {1, 2, 4, 8, 16};
};

// One full measurement at a given shard count: build the plane, register
// the population, then time each shard's per-period telemetry batch.
ScalePoint measure(const Config& cfg, int shards) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  std::vector<cluster::Node*> nodes;
  nodes.reserve(cfg.nodes);
  for (int n = 0; n < cfg.nodes; ++n) nodes.push_back(&k8s.add_node({}));

  const std::uint64_t total =
      static_cast<std::uint64_t>(cfg.apps) * cfg.containers_per_app;
  shard::ShardPlaneConfig pcfg;
  pcfg.shards = shards;
  shard::ShardedControlPlane plane(
      sim, net, k8s, 0.5 * static_cast<double>(total),
      static_cast<memcg::Bytes>(total) * 32 * memcg::kMiB + memcg::kGiB,
      pcfg);

  // Pinned placement: a 100k-population "fewest containers" scan per pod
  // would swamp the setup; round-robin is what a scheduler would do here
  // anyway.
  std::uint64_t next = 0;
  for (int a = 0; a < cfg.apps; ++a) {
    std::vector<cluster::Container*> group;
    group.reserve(cfg.containers_per_app);
    for (int i = 0; i < cfg.containers_per_app; ++i, ++next) {
      cluster::ContainerSpec spec;
      spec.name = "a" + std::to_string(a) + "/" + std::to_string(i);
      group.push_back(&k8s.create_container(
          spec, 0.1, 32 * memcg::kMiB, nodes[next % nodes.size()]));
    }
    plane.manage("app" + std::to_string(a), group);
  }
  plane.start();
  sim.run_until(sim.now() + sim::milliseconds(100));  // drain registration

  // Pre-grouped telemetry batches, one vector per shard; only period_end
  // and the throttle rotation change between periods.
  std::vector<std::vector<core::CpuStatsMsg>> by_shard(shards);
  for (const cluster::Container* c : k8s.containers()) {
    core::CpuStatsMsg m;
    m.cgroup = c->id();
    m.quota = sim::milliseconds(10);
    by_shard[plane.shard_of_container(c->id())].push_back(m);
  }

  ScalePoint pt;
  pt.shards = shards;
  pt.containers = total;
  for (const auto& batch : by_shard) {
    pt.max_shard_containers =
        std::max(pt.max_shard_containers,
                 static_cast<std::uint64_t>(batch.size()));
  }

  std::uint64_t decisions_before = 0;
  for (int s = 0; s < shards; ++s) {
    decisions_before += plane.shard(s).allocator().cpu_scale_ups() +
                        plane.shard(s).allocator().cpu_scale_downs();
  }

  // dt_by_shard[s] holds one timed-batch sample per period.
  std::vector<std::vector<double>> dt_by_shard(shards);
  for (int p = 0; p < cfg.periods; ++p) {
    for (int s = 0; s < shards; ++s) {
      core::Controller& controller = plane.shard(s).controller();
      for (core::CpuStatsMsg& m : by_shard[s]) {
        m.period_end = sim.now();
        m.throttled = (m.cgroup + static_cast<std::uint32_t>(p)) % 3 == 0;
        m.unused = m.throttled ? 0 : sim::milliseconds(5);
      }
      // Warm pass (untimed): pulls this shard's registry, index, and window
      // state back into cache — see the methodology note at the top.
      for (const core::CpuStatsMsg& m : by_shard[s]) controller.on_cpu_stats(m);
      const auto t0 = std::chrono::steady_clock::now();
      for (const core::CpuStatsMsg& m : by_shard[s]) controller.on_cpu_stats(m);
      dt_by_shard[s].push_back(wall_seconds(t0));
      pt.msgs += by_shard[s].size();
    }
    // Limit RPCs drain off the timed path: wire delivery is identical at
    // every shard count, and the question here is controller-side cost.
    sim.run_until(sim.now() + sim::milliseconds(100));
  }

  // Per-shard best-of-N over periods (noise-robust — see the methodology
  // note at the top), then critical-path model.
  double sum_best_s = 0.0;
  double critical_s = 0.0;
  double critical_ns_per_c = 0.0;
  for (int s = 0; s < shards; ++s) {
    const double t =
        *std::min_element(dt_by_shard[s].begin(), dt_by_shard[s].end());
    sum_best_s += t;
    critical_s = std::max(critical_s, t);
    critical_ns_per_c = std::max(
        critical_ns_per_c, t * 1e9 / static_cast<double>(by_shard[s].size()));
  }

  std::uint64_t decisions_after = 0;
  for (int s = 0; s < shards; ++s) {
    decisions_after += plane.shard(s).allocator().cpu_scale_ups() +
                       plane.shard(s).allocator().cpu_scale_downs();
  }
  pt.decisions = decisions_after - decisions_before;
  const double msgs_per_period = static_cast<double>(total);
  pt.decision_ns = sum_best_s * 1e9 / msgs_per_period;
  pt.sweep_ms = critical_s * 1e3;
  pt.critical_ns_per_c = critical_ns_per_c;
  pt.agg_msgs_per_s = msgs_per_period / critical_s;
  return pt;
}

// Determinism phase: two fresh identical planes, one swept at --jobs 1 and
// one at --jobs 4, must produce identical decision checksums every round.
int determinism_phase() {
  constexpr int kShards = 4;
  constexpr int kApps = 16;
  constexpr int kPerApp = 8;
  struct Plane {
    sim::Simulation sim;
    net::Network net;
    cluster::Cluster k8s;
    shard::ShardedControlPlane plane;
    Plane()
        : net(sim), k8s(sim), plane(sim, net, k8s, 64.0,
                                    memcg::Bytes{8} * memcg::kGiB,
                                    [] {
                                      shard::ShardPlaneConfig c;
                                      c.shards = kShards;
                                      return c;
                                    }()) {
      for (int n = 0; n < 8; ++n) k8s.add_node({});
      for (int a = 0; a < kApps; ++a) {
        std::vector<cluster::Container*> group;
        for (int i = 0; i < kPerApp; ++i) {
          cluster::ContainerSpec spec;
          spec.name = "a" + std::to_string(a) + "/" + std::to_string(i);
          group.push_back(&k8s.create_container(spec, 0.25, 32 * memcg::kMiB));
        }
        plane.manage("app" + std::to_string(a), group);
      }
      plane.start();
      sim.run_until(sim::milliseconds(100));
    }
    std::vector<std::vector<core::CpuStatsMsg>> batches(int round) {
      std::vector<std::vector<core::CpuStatsMsg>> by_shard(kShards);
      for (const cluster::Container* c : k8s.containers()) {
        core::CpuStatsMsg m;
        m.cgroup = c->id();
        m.period_end = sim.now();
        m.quota = sim::milliseconds(10);
        m.throttled = (m.cgroup + static_cast<std::uint32_t>(round)) % 2 == 0;
        m.unused = m.throttled ? 0 : sim::milliseconds(6);
        by_shard[plane.shard_of_container(c->id())].push_back(m);
      }
      return by_shard;
    }
  };
  Plane serial, threaded;
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t a = serial.plane.sweep_parallel(serial.batches(round), 1);
    const std::uint64_t b =
        threaded.plane.sweep_parallel(threaded.batches(round), 4);
    if (a != b) {
      std::fprintf(stderr,
                   "shard_scale: NONDETERMINISM — sweep_parallel checksum "
                   "%016" PRIx64 " (jobs 1) != %016" PRIx64
                   " (jobs 4) at round %d\n",
                   a, b, round);
      return 1;
    }
    serial.sim.run_until(serial.sim.now() + sim::milliseconds(100));
    threaded.sim.run_until(threaded.sim.now() + sim::milliseconds(100));
  }
  std::printf("shard_scale: sweep_parallel byte-identical at jobs 1 vs 4\n");
  return 0;
}

// --- output / baseline check ----------------------------------------------

std::string to_json(const std::vector<ScalePoint>& points) {
  std::ostringstream out;
  const ScalePoint& first = points.front();
  const ScalePoint& last = points.back();
  char buf[256];
  out << "{\n  \"bench\": \"shard_scale\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"containers\": %" PRIu64 ",\n  \"decision_ns_1\": %.1f,\n",
                first.containers, first.decision_ns);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"decision_ns_max\": %.1f,\n"
                "  \"throughput_ratio\": %.2f,\n"
                "  \"sweep_flatness\": %.3f,\n",
                last.decision_ns, last.agg_msgs_per_s / first.agg_msgs_per_s,
                last.critical_ns_per_c / first.critical_ns_per_c);
  out << buf;
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"shards\": %d, \"decision_ns\": %.1f, \"sweep_ms\": %.3f, "
        "\"agg_msgs_per_s\": %.0f, \"max_shard_containers\": %" PRIu64
        ", \"decisions\": %" PRIu64 "}%s\n",
        p.shards, p.decision_ns, p.sweep_ms, p.agg_msgs_per_s,
        p.max_shard_containers, p.decisions, i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return out.str();
}

bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

int check_against(const std::string& path, const std::vector<ScalePoint>& pts,
                  double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "shard_scale: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  double base_ns = 0.0;
  double base_ratio = 0.0;
  if (!find_number(json, "decision_ns_1", &base_ns) ||
      !find_number(json, "throughput_ratio", &base_ratio)) {
    std::fprintf(stderr, "shard_scale: baseline %s missing fields\n",
                 path.c_str());
    return 1;
  }
  const double fresh_ns = pts.front().decision_ns;
  const double fresh_ratio =
      pts.back().agg_msgs_per_s / pts.front().agg_msgs_per_s;
  if (fresh_ns > base_ns * (1.0 + tolerance)) {
    std::fprintf(stderr,
                 "shard_scale: REGRESSION — %.1f ns/decision is above "
                 "%.1f (baseline %.1f plus %.0f%% tolerance)\n",
                 fresh_ns, base_ns * (1.0 + tolerance), base_ns,
                 tolerance * 100.0);
    return 1;
  }
  if (fresh_ratio < base_ratio * (1.0 - tolerance)) {
    std::fprintf(stderr,
                 "shard_scale: SCALING REGRESSED — throughput ratio %.2f is "
                 "below %.2f (baseline %.2f minus %.0f%% tolerance)\n",
                 fresh_ratio, base_ratio * (1.0 - tolerance), base_ratio,
                 tolerance * 100.0);
    return 1;
  }
  std::printf("shard_scale: ok — %.1f ns/decision vs baseline %.1f, "
              "throughput ratio %.2f vs baseline %.2f (tolerance %.0f%%)\n",
              fresh_ns, base_ns, fresh_ratio, base_ratio, tolerance * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  double tolerance = 0.25;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--check") {
      check_path = next();
    } else if (flag == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (flag == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: shard_scale [--out FILE] [--check FILE] "
                   "[--tolerance X] [--quick]\n");
      return 2;
    }
  }

  Config cfg;
  if (quick) {
    cfg.nodes = 200;
    cfg.apps = 40;
    cfg.containers_per_app = 50;
    cfg.periods = 4;
    cfg.shard_counts = {1, 4};
  }

  if (determinism_phase() != 0) return 1;

  std::vector<ScalePoint> points;
  for (const int shards : cfg.shard_counts) {
    points.push_back(measure(cfg, shards));
    const ScalePoint& p = points.back();
    std::printf("shard_scale: shards=%2d decision_ns=%.1f sweep_ms=%.3f "
                "agg_msgs_per_s=%.0f max_shard_containers=%" PRIu64 "\n",
                p.shards, p.decision_ns, p.sweep_ms, p.agg_msgs_per_s,
                p.max_shard_containers);
  }

  const ScalePoint& first = points.front();
  int failures = 0;
  // Flatness: per-msg and per-container critical-path cost must not grow
  // with the shard count (quick mode keeps the same bound — the cost model
  // is size-independent).
  for (const ScalePoint& p : points) {
    if (p.decision_ns > first.decision_ns * 1.25) {
      std::fprintf(stderr,
                   "shard_scale: FLATNESS VIOLATED — %.1f ns/decision at "
                   "%d shards vs %.1f at 1 (limit 1.25x)\n",
                   p.decision_ns, p.shards, first.decision_ns);
      ++failures;
    }
    if (p.critical_ns_per_c > first.critical_ns_per_c * 1.25) {
      std::fprintf(stderr,
                   "shard_scale: SWEEP FLATNESS VIOLATED — %.1f ns/container "
                   "critical path at %d shards vs %.1f at 1 (limit 1.25x)\n",
                   p.critical_ns_per_c, p.shards, first.critical_ns_per_c);
      ++failures;
    }
  }
  const double ratio =
      points.back().agg_msgs_per_s / first.agg_msgs_per_s;
  const double ratio_floor = quick ? 2.0 : 8.0;
  if (ratio < ratio_floor) {
    std::fprintf(stderr,
                 "shard_scale: SCALING SHORTFALL — modeled aggregate "
                 "throughput only %.2fx at %d shards (need >= %.1fx)\n",
                 ratio, points.back().shards, ratio_floor);
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf("shard_scale: flat to %d shards, modeled aggregate throughput "
              "%.2fx\n",
              points.back().shards, ratio);

  const std::string json = to_json(points);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  if (!check_path.empty() && !quick) {
    return check_against(check_path, points, tolerance);
  }
  return 0;
}
