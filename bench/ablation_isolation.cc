// Ablation: runtime enforcement of the Distributed Container (Section III /
// VI-C). Two tenants share a cluster; tenant B runs a CPU storm. With
// runtime-enforced global limits (Escra), B is confined to its budget and A
// is untouched. With admission-only enforcement (the Resource Quota
// behaviour: limits checked at deploy time, containers statically sized and
// free to use them), B's storm rides its deployed limits and collides with
// A on the nodes.

#include <cstdio>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "exp/report.h"
#include "net/network.h"
#include "sim/histogram.h"
#include "sim/stats.h"

using namespace escra;
using memcg::kGiB;
using memcg::kMiB;

namespace {

struct Result {
  double a_p99_ms = 0.0;
  double b_usage_peak_cores = 0.0;
};

Result run(bool runtime_enforcement) {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  // One small node: contention is possible by design.
  k8s.add_node(cluster::NodeConfig{.cores = 8.0});

  cluster::ContainerSpec spec;
  spec.base_memory = 96 * kMiB;
  spec.max_parallelism = 8.0;
  spec.name = "tenant-a";
  cluster::Container& a = k8s.create_container(spec, 2.0, 512 * kMiB);
  spec.name = "tenant-b";
  // Admission-time quota: B deployed with a 6-core limit it rarely uses.
  cluster::Container& b = k8s.create_container(spec, 6.0, 512 * kMiB);

  std::unique_ptr<core::EscraSystem> escra_a, escra_b;
  if (runtime_enforcement) {
    escra_a = std::make_unique<core::EscraSystem>(simulation, network, k8s,
                                                  3.0, kGiB);
    escra_a->manage({&a});
    escra_a->start();
    escra_b = std::make_unique<core::EscraSystem>(simulation, network, k8s,
                                                  3.0, kGiB);
    escra_b->manage({&b});
    escra_b->start();
  }

  // Tenant A: steady latency-sensitive flow (~2.7 cores, so A + a storming
  // B at its deployed 6-core limit oversubscribes the 8-core node).
  sim::Histogram a_latency;
  simulation.schedule_every(sim::milliseconds(3), sim::milliseconds(3), [&] {
    const sim::TimePoint t0 = simulation.now();
    a.submit(sim::milliseconds(8), kMiB, [&, t0](bool ok) {
      if (ok && simulation.now() > sim::seconds(5)) {
        a_latency.record(std::max<sim::TimePoint>(1, simulation.now() - t0));
      }
    });
  });
  // Tenant B: storm wanting ~8 cores from t=10s.
  simulation.schedule_at(sim::seconds(10), [&] {
    simulation.schedule_every(simulation.now() + sim::milliseconds(10),
                              sim::milliseconds(10), [&] {
                                b.submit(sim::milliseconds(80), kMiB, nullptr);
                              });
  });

  sim::SampleSet b_usage;
  sim::Duration prev = 0;
  simulation.schedule_every(sim::kSecond, sim::kSecond, [&] {
    const auto consumed = b.cpu_cgroup().total_consumed();
    b_usage.add(static_cast<double>(consumed - prev) / 1e6);
    prev = consumed;
  });

  simulation.run_until(sim::seconds(40));
  Result result;
  result.a_p99_ms = static_cast<double>(a_latency.percentile(99)) / 1000.0;
  result.b_usage_peak_cores = b_usage.max();
  return result;
}

}  // namespace

int main() {
  exp::print_section(
      "Ablation: runtime-enforced Distributed Container vs admission-only "
      "quota");
  const Result admission = run(false);
  const Result runtime = run(true);
  exp::print_table(
      {"enforcement", "tenant-B peak usage (cores)", "tenant-A p99 (ms)"},
      {{"admission-only (quota)", exp::fmt(admission.b_usage_peak_cores, 2),
        exp::fmt(admission.a_p99_ms, 1)},
       {"runtime (escra)", exp::fmt(runtime.b_usage_peak_cores, 2),
        exp::fmt(runtime.a_p99_ms, 1)}});
  std::printf(
      "\nexpected shape: with admission-only enforcement B's storm runs at\n"
      "its deployed 6-core limit and squeezes A on the 8-core node; with\n"
      "runtime enforcement B is held near its 3-core tenant budget and A's\n"
      "tail barely moves.\n");
  return 0;
}
