// Section VI-I: "Why a 100ms report period?" The paper measured 99%
// end-to-end latency across telemetry report frequencies from 50 ms to
// 200 ms in 50 ms steps and found 100 ms (the default Linux CFS period) the
// best trade-off. This bench regenerates that sweep on MediaMicroservice
// with the burst workload.

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"
#include "sweep/runner.h"

using namespace escra;

int main() {
  exp::print_section(
      "Telemetry report-period sweep (MediaMicroservice, burst workload)");
  const std::vector<int> periods_ms = {50, 100, 150, 200};
  // Each period is its own simulation; sweep them in parallel. parallel_map
  // returns results by index, so the table prints in period order no matter
  // which cell finishes first.
  const std::vector<exp::RunResult> results =
      sweep::parallel_map<exp::RunResult>(
          periods_ms.size(), /*jobs=*/0, [&periods_ms](std::size_t i) {
            exp::MicroserviceConfig cfg;
            cfg.benchmark = app::Benchmark::kMedia;
            cfg.workload = workload::WorkloadKind::kBurst;
            cfg.policy = exp::PolicyKind::kEscra;
            cfg.escra.cfs_period = sim::milliseconds(periods_ms[i]);
            cfg.duration = sim::seconds(60);
            return exp::run_microservice(cfg);
          });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunResult& r = results[i];
    rows.push_back({std::to_string(periods_ms[i]) + "ms",
                    exp::fmt(r.p99_latency_ms, 1),
                    exp::fmt(r.p999_latency_ms, 1),
                    exp::fmt(r.throughput_rps, 1),
                    std::to_string(r.telemetry_msgs),
                    std::to_string(r.limit_updates)});
  }
  exp::print_table({"report period", "p99 ms", "p99.9 ms", "tput req/s",
                    "telemetry msgs", "limit updates"},
                   rows);
  std::printf(
      "\nexpected shape (paper Section VI-I): sub-second periods all work;\n"
      "100 ms gives the lowest tail latency — shorter periods add message\n"
      "volume and control noise, longer ones react more slowly.\n");
  return 0;
}
