// Control-loop latency under burst load (the instrumented counterpart of
// the paper's sub-second allocation claim and the Section VI-I overhead
// numbers).
//
// Runs the TeaStore graph on 3 nodes under a bursty workload with a full
// obs::Observer attached, then prints:
//   - the per-stage control-loop latency table (fire -> ingest -> decide ->
//     apply), p50/p90/p99 in simulated milliseconds — end-to-end p99 must
//     be well under one second for the paper's claim to hold;
//   - a sample ThrottleObserved -> CpuGrant -> RpcIssued -> RpcApplied
//     causal chain pulled from the decision trace;
//   - control-plane decision counts from the metrics registry.
#include <cstdio>
#include <memory>

#include "app/benchmarks.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

using namespace escra;

int main() {
  using memcg::kGiB;

  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 3; ++i) k8s.add_node({});

  app::Application application(k8s, app::make_teastore(), sim::Rng(7),
                               /*initial_cores=*/1.0,
                               /*initial_mem=*/512 * memcg::kMiB);
  core::EscraSystem escra(simulation, network, k8s, /*global_cpu=*/12.0,
                          /*global_mem=*/8 * kGiB);

  obs::Observer observer;
  escra.attach_observer(observer);
  network.attach_metrics(observer.metrics());

  escra.manage(application.containers());
  escra.start();

  // Bursty load: alternating calm and 600 req/s bursts keep the allocator
  // granting (throttle-driven) and shrinking (slack-driven) all run long.
  workload::LoadGenerator loadgen(
      simulation,
      std::make_unique<workload::BurstArrivals>(
          workload::BurstArrivals::Params{}, sim::Rng(11)),
      [&application](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      });
  loadgen.run(sim::seconds(5), sim::seconds(65));
  simulation.run_until(sim::seconds(70));

  std::printf("control_loop_trace: TeaStore, 3 nodes, burst workload, 60 s\n");
  std::printf("requests: %llu ok, %llu failed\n\n",
              static_cast<unsigned long long>(loadgen.succeeded()),
              static_cast<unsigned long long>(loadgen.failed()));

  std::printf("per-stage control-loop latency (%llu complete loops):\n%s\n",
              static_cast<unsigned long long>(
                  observer.profiler().loops_completed()),
              observer.profiler().table().c_str());

  const auto& m = observer.metrics();
  std::printf("decisions: %llu grants, %llu shrinks, %llu RPCs applied; "
              "%llu throttled CFS periods\n",
              static_cast<unsigned long long>(
                  m.find_counter("allocator.cpu_grants")->value()),
              static_cast<unsigned long long>(
                  m.find_counter("allocator.cpu_shrinks")->value()),
              static_cast<unsigned long long>(
                  m.find_counter("controller.rpcs_applied")->value()),
              static_cast<unsigned long long>(
                  m.find_counter("cfs.throttled_periods_total")->value()));
  std::printf("trace: %llu events recorded, %llu evicted\n",
              static_cast<unsigned long long>(observer.trace().recorded()),
              static_cast<unsigned long long>(observer.trace().evicted()));

  // Show one complete causal chain: the newest RpcApplied whose chain roots
  // at a ThrottleObserved.
  const obs::TraceBuffer& trace = observer.trace();
  for (std::size_t i = trace.size(); i-- > 0;) {
    const obs::TraceEvent& ev = trace.at(i);
    if (ev.kind != obs::EventKind::kRpcApplied) continue;
    const auto chain = trace.chain(ev.id);
    if (chain.empty() ||
        chain.front().kind != obs::EventKind::kThrottleObserved) {
      continue;
    }
    std::printf("\nsample causal chain (event #%llu):\n",
                static_cast<unsigned long long>(ev.id));
    for (const obs::TraceEvent& hop : chain) {
      std::printf("  %10.6fs  %-18s container=%u node=%u %.3f -> %.3f\n",
                  sim::to_seconds(hop.time), obs::event_kind_name(hop.kind),
                  hop.container, hop.node, hop.before, hop.after);
    }
    std::printf("  end-to-end %.3f ms\n",
                static_cast<double>(chain.back().time - chain.front().time) /
                    1000.0);
    break;
  }
  return 0;
}
