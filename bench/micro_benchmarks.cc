// Google-benchmark microbenchmarks for Escra's hot paths: the allocator's
// per-statistic decision, the Distributed Container bookkeeping, the CFS
// max-min fair scheduler step, and the telemetry data structures. These back
// the Section VI-I capacity claims with per-operation costs.

#include <benchmark/benchmark.h>

#include "baselines/decaying_histogram.h"
#include "cfs/node_scheduler.h"
#include "core/allocator.h"
#include "core/distributed_container.h"
#include "sim/histogram.h"
#include "sim/rng.h"
#include "sim/stats.h"

using namespace escra;

namespace {

void BM_AllocatorOnCpuStats(benchmark::State& state) {
  const auto containers = static_cast<std::uint32_t>(state.range(0));
  core::EscraConfig config;
  core::DistributedContainer app(4096.0, 1024LL * memcg::kGiB);
  core::ResourceAllocator alloc(config, app);
  for (std::uint32_t i = 1; i <= containers; ++i) {
    alloc.register_container(i, 1.0, 256 * memcg::kMiB);
  }
  sim::Rng rng(1);
  std::uint32_t next = 1;
  for (auto _ : state) {
    core::CpuStatsMsg m;
    m.cgroup = next;
    next = next % containers + 1;
    m.quota = sim::milliseconds(100);
    m.throttled = rng.chance(0.1);
    m.unused = m.throttled ? 0 : 30000;
    benchmark::DoNotOptimize(alloc.on_cpu_stats(m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorOnCpuStats)->Arg(32)->Arg(512)->Arg(4096);

void BM_DistributedContainerSetCores(benchmark::State& state) {
  core::DistributedContainer app(4096.0, 1024LL * memcg::kGiB);
  for (std::uint32_t i = 1; i <= 256; ++i) {
    app.add_member(i, 1.0, 256 * memcg::kMiB);
  }
  std::uint32_t next = 1;
  double target = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.set_member_cores(next, target));
    next = next % 256 + 1;
    target = target == 0.5 ? 1.5 : 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistributedContainerSetCores);

void BM_MaxMinFair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  std::vector<double> demands(n);
  for (double& d : demands) d = rng.uniform(0.0, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cfs::NodeCpuScheduler::max_min_fair(demands, 20.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaxMinFair)->Arg(8)->Arg(64)->Arg(512);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram h;
  sim::Rng rng(3);
  std::int64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 1103515245 + 12345) % 1000000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  sim::Histogram h;
  sim::Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    h.record(static_cast<std::int64_t>(rng.exponential(1e-5)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(99.9));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_SlidingWindowAdd(benchmark::State& state) {
  sim::SlidingWindow w(5);
  double x = 0.0;
  for (auto _ : state) {
    w.add(x);
    x += 0.1;
    benchmark::DoNotOptimize(w.mean());
  }
}
BENCHMARK(BM_SlidingWindowAdd);

void BM_DecayingHistogramAdd(benchmark::State& state) {
  baselines::DecayingHistogram h(16.0, 128, 120.0);
  double t = 0.0;
  for (auto _ : state) {
    h.add(t, 2.0);
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecayingHistogramAdd);

void BM_DecayingHistogramPercentile(benchmark::State& state) {
  baselines::DecayingHistogram h(16.0, 128, 120.0);
  sim::Rng rng(5);
  for (int t = 0; t < 10000; ++t) h.add(t, rng.uniform(0.0, 8.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(95.0));
  }
}
BENCHMARK(BM_DecayingHistogramPercentile);

}  // namespace

BENCHMARK_MAIN();
