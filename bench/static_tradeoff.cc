// Section VI-B: the performance / cost-efficiency trade-off of static
// allocation. The paper profiles MediaMicroservice, then runs it with limits
// at 0.75x (underutilized), 1.0x (best-estimate), and 1.5x (safe buffer) of
// the profiled maximum: performance improves with the multiplier, but so
// does slack. 1.5x is the setting used for the headline comparison.

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"

using namespace escra;

int main() {
  exp::print_section(
      "Static allocation trade-off (MediaMicroservice, fixed workload)");
  std::vector<std::vector<std::string>> rows;
  for (const double multiplier : {0.75, 1.0, 1.5}) {
    exp::MicroserviceConfig cfg;
    cfg.benchmark = app::Benchmark::kMedia;
    cfg.workload = workload::WorkloadKind::kFixed;
    cfg.policy = exp::PolicyKind::kStatic;
    cfg.static_multiplier = multiplier;
    cfg.duration = sim::seconds(60);
    const exp::RunResult r = exp::run_microservice(cfg);
    rows.push_back({exp::fmt(multiplier, 2) + "x",
                    exp::fmt(r.throughput_rps, 1),
                    exp::fmt(r.p999_latency_ms, 1),
                    exp::fmt(r.cpu_slack_cores.percentile(50), 2),
                    exp::fmt(r.mem_slack_mib.percentile(50), 1),
                    std::to_string(r.oom_kills),
                    std::to_string(r.failed)});
  }
  exp::print_table({"limits", "tput req/s", "p99.9 ms", "cpu-slack p50",
                    "mem-slack p50 MiB", "ooms", "fails"},
                   rows);
  std::printf(
      "\nexpected shape (paper Section VI-B): latency falls and throughput\n"
      "rises with more headroom, while slack (the cost) grows; 0.75x suffers\n"
      "throttles and OOM kills, 1.5x wastes the most resources.\n");
  return 0;
}
