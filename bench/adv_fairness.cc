// Adversarial-tenant fairness benchmark: what a lying tenant extracts from
// the κ/Υ loop, and what the Karma-style credit defense claws back.
//
// Three arms over one pool (8 cores, 4 members, 2 x 16-core nodes), same
// seed, same honest traffic:
//
//   baseline  four honest members: steady load plus staggered 6-wide
//             bursts whose per-job latency is the honest experience;
//   attack    member 0 stops doing real work and forges its telemetry
//             stream instead (workload::GreedyTenant, inflated-usage
//             strategy), defense off: the scale-up arm funds it until it
//             holds the pool and honest bursts have nowhere to grow;
//   defense   identical attack with config.credit_defense on: the settle
//             sweep bleeds the liar's balance, the Υ-gate stops funding it
//             above fair share, and the decay walks it back down.
//
// Reported per arm: honest burst p50/p99, long/short-term Jain over member
// allocations (exp::FairnessMeter), pool utilization, the liar's capture
// ratio (mean cores / static fair share), and deterministic event counts.
// Asserted, not just reported (the benchmark is a regression test):
//
//   - attack arm: the liar captures >= 2x its fair share and honest p99
//     degrades by >= 1.5x over baseline;
//   - defense arm: honest p99 recovers to within 10% of baseline, long-term
//     Jain recovers to within 10% of baseline, pool utilization stays
//     within 5% of baseline, and the InvariantChecker (credit rules armed)
//     finds nothing.
//
// With --check BASELINE.json the run additionally verifies byte-exact
// determinism against the committed baseline (full mode only).
//
//   adv_fairness [--out FILE] [--check FILE] [--quick]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adv/greedy.h"
#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "exp/fairness.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"
#include "sim/histogram.h"
#include "sim/rng.h"

using namespace escra;

namespace {

constexpr double kPoolCores = 8.0;
constexpr int kMembers = 4;
constexpr std::uint64_t kSeed = 0xadf41235ULL;

struct ArmResult {
  std::int64_t honest_p50_us = 0;
  std::int64_t honest_p99_us = 0;
  std::uint64_t honest_jobs = 0;
  double jain_long = 0.0;
  double jain_short = 0.0;
  double utilization = 0.0;
  double capture = 0.0;  // member 0's mean cores / static fair share
  std::uint64_t lies = 0;
  std::uint64_t credit_charges = 0;
  std::uint64_t greedy_throttles = 0;
  std::uint64_t events = 0;  // determinism anchor
  std::string checker_report;  // empty = ok (defense arm only)
};

// Steady load plus a staggered burst per honest container: every burst
// submits 6 parallel jobs and needs ~6 cores to finish at nominal latency —
// exactly the headroom a pool-hoarding liar removes.
void drive_honest(sim::Simulation& sim, cluster::Container* c, int phase,
                  sim::Histogram* latency) {
  sim.schedule_every(sim::milliseconds(100 + phase), sim::milliseconds(100),
                     [c] { c->submit(sim::milliseconds(50), 0, nullptr); });
  sim.schedule_every(sim::milliseconds(2000 + 650 * phase),
                     sim::milliseconds(2000), [&sim, c, latency] {
                       for (int j = 0; j < 6; ++j) {
                         const sim::TimePoint t0 = sim.now();
                         c->submit(sim::milliseconds(100), 0,
                                   [&sim, t0, latency](bool ok) {
                                     if (ok) {
                                       latency->record(std::max<sim::TimePoint>(
                                           1, sim.now() - t0));
                                     }
                                   });
                       }
                     });
}

ArmResult run_arm(bool attack, bool defense, sim::Duration horizon) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  core::EscraConfig cfg;
  cfg.credit_defense = defense;
  core::EscraSystem escra(sim, network, k8s, kPoolCores,
                          4LL * memcg::kGiB, cfg);
  for (int n = 0; n < 2; ++n) k8s.add_node({.cores = 16.0});

  std::vector<cluster::Container*> members;
  cluster::ContainerSpec spec;
  spec.base_memory = 96 * memcg::kMiB;
  spec.max_parallelism = 8.0;
  for (int i = 0; i < kMembers; ++i) {
    spec.name = "m" + std::to_string(i);
    members.push_back(&k8s.create_container(spec, 1.0, 512 * memcg::kMiB));
  }
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(members);
  escra.start();

  check::InvariantChecker checker(escra, network, observer);
  if (defense) checker.attach_credits(escra.controller().credits());

  sim::Histogram honest_latency;
  for (int i = 1; i < kMembers; ++i) {
    drive_honest(sim, members[i], i, &honest_latency);
  }

  workload::GreedyTenant liar(sim, escra.controller(),
                              workload::GreedyProfile{}, sim::Rng(kSeed));
  if (attack) {
    liar.attach(*members[0]);
    liar.start(sim::milliseconds(100));
  } else {
    drive_honest(sim, members[0], 0, &honest_latency);
  }

  exp::FairnessMeter meter(sim, escra.app());
  meter.track(members[0]->id(), /*greedy=*/true);
  for (int i = 1; i < kMembers; ++i) meter.track(members[i]->id(), false);
  meter.start(sim::seconds(5));  // skip the cold-start transient

  sim.run_until(horizon);
  checker.check_now();

  const exp::FairnessReport fr = meter.report();
  ArmResult r;
  r.honest_p50_us = honest_latency.percentile(50);
  r.honest_p99_us = honest_latency.percentile(99);
  r.honest_jobs = honest_latency.count();
  r.jain_long = fr.jain_long_term;
  r.jain_short = fr.jain_short_term;
  r.utilization = fr.cpu_utilization;
  r.capture = fr.greedy_capture;
  r.lies = liar.lies_told();
  r.credit_charges = observer.h.credit_charges->value();
  r.greedy_throttles = observer.h.greedy_throttles->value();
  r.events = sim.executed_events();
  if (!checker.ok()) r.checker_report = checker.report();
  return r;
}

std::string to_json(const ArmResult& base, const ArmResult& atk,
                    const ArmResult& def) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"adv_fairness\",\n"
      "  \"baseline_p50_us\": %" PRId64 ",\n"
      "  \"baseline_p99_us\": %" PRId64 ",\n"
      "  \"baseline_jain_long\": %.4f,\n"
      "  \"baseline_utilization\": %.4f,\n"
      "  \"baseline_events\": %" PRIu64 ",\n"
      "  \"attack_p50_us\": %" PRId64 ",\n"
      "  \"attack_p99_us\": %" PRId64 ",\n"
      "  \"attack_jain_long\": %.4f,\n"
      "  \"attack_capture\": %.2f,\n"
      "  \"attack_lies\": %" PRIu64 ",\n"
      "  \"attack_events\": %" PRIu64 ",\n"
      "  \"defense_p50_us\": %" PRId64 ",\n"
      "  \"defense_p99_us\": %" PRId64 ",\n"
      "  \"defense_jain_long\": %.4f,\n"
      "  \"defense_utilization\": %.4f,\n"
      "  \"defense_capture\": %.2f,\n"
      "  \"defense_credit_charges\": %" PRIu64 ",\n"
      "  \"defense_greedy_throttles\": %" PRIu64 ",\n"
      "  \"defense_events\": %" PRIu64 ",\n"
      "  \"p99_recovery\": %.2f\n"
      "}\n",
      base.honest_p50_us, base.honest_p99_us, base.jain_long,
      base.utilization, base.events, atk.honest_p50_us, atk.honest_p99_us,
      atk.jain_long, atk.capture, atk.lies, atk.events, def.honest_p50_us,
      def.honest_p99_us, def.jain_long, def.utilization, def.capture,
      def.credit_charges, def.greedy_throttles, def.events,
      def.honest_p99_us > 0 ? static_cast<double>(atk.honest_p99_us) /
                                  static_cast<double>(def.honest_p99_us)
                            : 0.0);
  return buf;
}

bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

int check_against(const std::string& path, const ArmResult& base,
                  const ArmResult& atk, const ArmResult& def) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "adv_fairness: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const struct {
    const char* key;
    double fresh;
  } fields[] = {
      {"baseline_p99_us", static_cast<double>(base.honest_p99_us)},
      {"baseline_events", static_cast<double>(base.events)},
      {"attack_p99_us", static_cast<double>(atk.honest_p99_us)},
      {"attack_events", static_cast<double>(atk.events)},
      {"defense_p99_us", static_cast<double>(def.honest_p99_us)},
      {"defense_events", static_cast<double>(def.events)},
  };
  for (const auto& f : fields) {
    double recorded = 0.0;
    if (!find_number(json, f.key, &recorded)) {
      std::fprintf(stderr, "adv_fairness: baseline %s missing %s\n",
                   path.c_str(), f.key);
      return 1;
    }
    // All three arms are deterministic: percentiles and event counts must
    // match the committed baseline bit for bit, not within a tolerance.
    if (recorded != f.fresh) {
      std::fprintf(stderr,
                   "adv_fairness: DETERMINISM DRIFT — %s is %.0f, baseline "
                   "recorded %.0f\n",
                   f.key, f.fresh, recorded);
      return 1;
    }
  }
  std::printf("adv_fairness: ok — matches baseline exactly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--check") {
      check_path = next();
    } else if (flag == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: adv_fairness [--out FILE] [--check FILE] "
                   "[--quick]\n");
      return 2;
    }
  }

  const sim::Duration horizon = quick ? sim::seconds(30) : sim::seconds(60);
  const ArmResult base = run_arm(/*attack=*/false, /*defense=*/false, horizon);
  const ArmResult atk = run_arm(/*attack=*/true, /*defense=*/false, horizon);
  const ArmResult def = run_arm(/*attack=*/true, /*defense=*/true, horizon);

  const std::string json = to_json(base, atk, def);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }

  int rc = 0;
  const auto fail = [&rc](const char* msg) {
    std::fprintf(stderr, "adv_fairness: %s\n", msg);
    rc = 1;
  };
  char msg[256];

  // The attack works with the defense off: >= 2x fair-share capture from
  // pure telemetry forgery, and the honest tail pays for it.
  if (atk.lies == 0) fail("attack arm told no lies (vacuous)");
  if (atk.capture < 2.0) {
    std::snprintf(msg, sizeof(msg),
                  "attack capture %.2f < 2.0 x fair share", atk.capture);
    fail(msg);
  }
  if (static_cast<double>(atk.honest_p99_us) <
      1.5 * static_cast<double>(base.honest_p99_us)) {
    std::snprintf(msg, sizeof(msg),
                  "attack did not degrade honest p99 (%" PRId64
                  " us vs baseline %" PRId64 " us)",
                  atk.honest_p99_us, base.honest_p99_us);
    fail(msg);
  }

  // The defense un-does it: honest tail and long-term fairness back within
  // 10% of the all-honest baseline, utilization within 5%, no invariant
  // violations.
  if (def.credit_charges == 0) fail("defense arm never charged (vacuous)");
  if (def.greedy_throttles == 0) fail("defense arm never decayed the liar");
  if (static_cast<double>(def.honest_p99_us) >
      1.10 * static_cast<double>(base.honest_p99_us)) {
    std::snprintf(msg, sizeof(msg),
                  "defense honest p99 %" PRId64
                  " us not within 10%% of baseline %" PRId64 " us",
                  def.honest_p99_us, base.honest_p99_us);
    fail(msg);
  }
  if (def.jain_long < 0.90 * base.jain_long) {
    std::snprintf(msg, sizeof(msg),
                  "defense long-term Jain %.3f not within 10%% of baseline "
                  "%.3f",
                  def.jain_long, base.jain_long);
    fail(msg);
  }
  // One-sided: the defense must not waste pool capacity. (It may *raise*
  // measured utilization — pinning the liar at fair share keeps that slice
  // allocated where the baseline's κ loop would have reclaimed it.)
  if (def.utilization < 0.95 * base.utilization) {
    std::snprintf(msg, sizeof(msg),
                  "defense utilization %.3f lost more than 5%% vs baseline "
                  "%.3f",
                  def.utilization, base.utilization);
    fail(msg);
  }
  if (!def.checker_report.empty()) {
    std::fprintf(stderr, "adv_fairness: invariant violations in defense arm:\n%s",
                 def.checker_report.c_str());
    rc = 1;
  }

  if (rc == 0 && !check_path.empty() && !quick) {
    rc = check_against(check_path, base, atk, def);
  }
  return rc;
}
