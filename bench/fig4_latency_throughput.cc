// Figure 4: change in 99.9% latency and throughput between Autopilot, the
// 1.5x-measured-peak static allocation, and Escra, for every application and
// workload distribution. Positive values mean Escra is better (a latency
// decrease / a throughput increase), matching the figure's orientation.

#include <cstdio>

#include "exp/report.h"
#include "grid.h"

using namespace escra;
using bench::grid_cell;
using bench::kApps;
using bench::kWorkloads;

int main() {
  // Fill the whole 4x4x3 grid in parallel; everything below is cache hits.
  bench::grid_prefetch({exp::PolicyKind::kStatic, exp::PolicyKind::kAutopilot,
                        exp::PolicyKind::kEscra},
                       /*jobs=*/0);
  exp::print_section(
      "Figure 4: %-decrease in p99.9 latency and %-increase in throughput "
      "of Escra vs each baseline");

  std::vector<std::vector<std::string>> rows;
  for (const auto a : kApps) {
    for (const auto w : kWorkloads) {
      const exp::RunResult& st = grid_cell(a, w, exp::PolicyKind::kStatic);
      const exp::RunResult& ap = grid_cell(a, w, exp::PolicyKind::kAutopilot);
      const exp::RunResult& es = grid_cell(a, w, exp::PolicyKind::kEscra);
      rows.push_back(
          {es.app_name, es.workload_name,
           exp::fmt_pct(exp::pct_decrease(ap.p999_latency_ms, es.p999_latency_ms)),
           exp::fmt_pct(exp::pct_increase(ap.throughput_rps, es.throughput_rps)),
           exp::fmt_pct(exp::pct_decrease(st.p999_latency_ms, es.p999_latency_ms)),
           exp::fmt_pct(exp::pct_increase(st.throughput_rps, es.throughput_rps))});
    }
  }
  exp::print_table({"app", "workload", "lat vs autopilot", "tput vs autopilot",
                    "lat vs static", "tput vs static"},
                   rows);
  std::printf(
      "\nexpected shape (paper Fig. 4): mostly positive bars; the largest\n"
      "gains on bursty workloads (burst/exp), where coarse or static limits\n"
      "lag the demand; occasional small negatives are expected (e.g. the\n"
      "paper's TrainTicket-Fixed, where static-1.5x slightly beats Escra).\n");
  return 0;
}
