// Cold-start scale benchmark: one million containers through the dense
// hot-state control plane.
//
// The tables in the paper stop at hundreds of containers; this bench checks
// that the interned-slot layout (core::ContainerIndex + struct-of-arrays
// state in the DistributedContainer and ResourceAllocator) keeps cold start
// linear and memory flat at cluster-operator scale:
//
//   - register_per_s: rate of interning + registering 1M containers into the
//     DistributedContainer pool and the allocator's sliding windows,
//   - stats_per_s: rate of per-period CPU telemetry ingestion across the
//     full population (dense slot lookup + windowed stats, no map probes),
//   - teardown_per_s: rate of deregistering every container (slot release,
//     generation bump, pool refund),
//   - rss_mib: resident set after the run (reads /proc/self/statm).
//
// With --rss-check the whole cold start repeats several times in-process;
// after a warmup the resident set must plateau (the ContainerIndex free-list
// reuses slots, so steady-state churn allocates nothing). With --check
// BASELINE.json it fails (exit 1) when register_per_s regressed by more
// than --tolerance (default 0.25) or the resident set grew beyond the
// baseline by more than the same tolerance.
//
//   coldstart_scale [--out FILE] [--check FILE] [--tolerance X]
//                   [--rss-check] [--quick]

#include <chrono>
#include <cinttypes>
#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/config.h"
#include "core/container_index.h"
#include "core/distributed_container.h"
#include "core/messages.h"

using namespace escra;

namespace {

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Resident set in KiB via /proc/self/statm (same source escra-fuzz's
// --rss-check uses). Returns 0 where /proc is unavailable; callers treat
// that as "cannot measure", not "zero bytes".
long current_rss_kib() {
#if defined(__GLIBC__)
  // Hand freed arena chunks back to the kernel first: a 1M-container run
  // fragments the main arena enough that glibc's retention (and khugepaged
  // back-fill) would otherwise show up as phantom RSS growth between
  // byte-identical runs.
  malloc_trim(0);
#endif
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  long size_pages = 0;
  long resident_pages = 0;
  statm >> size_pages >> resident_pages;
  const long page_kib = 4;  // x86-64 / aarch64 default page size
  return resident_pages * page_kib;
}

struct Results {
  std::uint64_t containers = 0;
  double register_per_s = 0.0;
  double stats_per_s = 0.0;
  double teardown_per_s = 0.0;
  double rss_mib = 0.0;
};

// One full cold start: register `n` containers, feed `periods` rounds of
// CPU telemetry across the whole population, then tear everything down.
// Returns a checksum so the optimizer cannot discard the work.
std::uint64_t cold_start(std::uint64_t n, int periods, Results* r) {
  core::EscraConfig config;
  // Pool sized so every registration succeeds: 0.1 cores / 16 MiB each.
  core::DistributedContainer app(/*cpu_limit_cores=*/0.1 * static_cast<double>(n) + 64.0,
                                 /*mem_limit=*/static_cast<memcg::Bytes>(n) * 16 * memcg::kMiB +
                                     memcg::kGiB);
  core::ResourceAllocator allocator(config, app);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t id = 0; id < n; ++id) {
    allocator.register_container(static_cast<std::uint32_t>(id), 0.1,
                                 16 * memcg::kMiB);
  }
  if (r != nullptr) {
    r->register_per_s = static_cast<double>(n) / wall_seconds(t0);
  }

  // Per-period telemetry across the full population: every sample takes the
  // dense slot path (index find + windows_[slot]); every third container
  // reports a throttle so the scale-up arm runs against the shared pool.
  std::uint64_t checksum = 0;
  const auto t1 = std::chrono::steady_clock::now();
  core::CpuStatsMsg stats;
  stats.quota = config.cfs_period / 10;
  for (int p = 0; p < periods; ++p) {
    stats.period_end = static_cast<sim::TimePoint>((p + 1)) * config.cfs_period;
    for (std::uint64_t id = 0; id < n; ++id) {
      stats.cgroup = static_cast<std::uint32_t>(id);
      stats.throttled = (id + static_cast<std::uint64_t>(p)) % 3 == 0;
      stats.unused = stats.throttled ? 0 : config.cfs_period / 20;
      if (allocator.on_cpu_stats(stats).has_value()) ++checksum;
    }
  }
  if (r != nullptr) {
    r->stats_per_s = static_cast<double>(n) * periods / wall_seconds(t1);
  }

  const auto t2 = std::chrono::steady_clock::now();
  for (std::uint64_t id = 0; id < n; ++id) {
    allocator.deregister_container(static_cast<std::uint32_t>(id));
  }
  if (r != nullptr) {
    r->teardown_per_s = static_cast<double>(n) / wall_seconds(t2);
  }
  checksum += app.member_count();
  return checksum;
}

// --- RSS plateau check -----------------------------------------------------

// Repeats the cold start in-process. The first kWarmupRuns grow the
// allocator arenas; after that the resident set must stay within kSlackKib
// of the post-warmup reading — the ContainerIndex free-list hands back the
// same slots every iteration, so steady state allocates nothing new.
int rss_check(std::uint64_t n, int periods, int total_runs) {
  constexpr int kWarmupRuns = 2;
  constexpr long kSlackKib = 8 * 1024;
  long plateau_kib = 0;
  for (int run = 0; run < total_runs; ++run) {
    cold_start(n, periods, nullptr);
    const long rss = current_rss_kib();
    if (rss == 0) {
      std::fprintf(stderr, "coldstart_scale: /proc/self/statm unavailable; "
                           "skipping RSS check\n");
      return 0;
    }
    if (run == kWarmupRuns - 1) {
      plateau_kib = rss;
    } else if (run >= kWarmupRuns && rss > plateau_kib + kSlackKib) {
      std::fprintf(stderr,
                   "coldstart_scale: RSS GREW — %ld KiB on run %d vs "
                   "%ld KiB plateau (+%ld KiB slack)\n",
                   rss, run + 1, plateau_kib, kSlackKib);
      return 1;
    }
    std::printf("coldstart_scale: run %d/%d rss %ld KiB\n", run + 1,
                total_runs, rss);
  }
  std::printf("coldstart_scale: RSS flat across %d runs of %" PRIu64
              " containers (plateau %ld KiB)\n",
              total_runs, n, plateau_kib);
  return 0;
}

// --- output / baseline check ----------------------------------------------

std::string to_json(const Results& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"coldstart_scale\",\n"
                "  \"containers\": %" PRIu64 ",\n"
                "  \"register_per_s\": %.0f,\n"
                "  \"stats_per_s\": %.0f,\n"
                "  \"teardown_per_s\": %.0f,\n"
                "  \"rss_mib\": %.1f\n"
                "}\n",
                r.containers, r.register_per_s, r.stats_per_s,
                r.teardown_per_s, r.rss_mib);
  return buf;
}

bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

int check_against(const std::string& path, const Results& fresh,
                  double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "coldstart_scale: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  double base_rate = 0.0;
  double base_rss = 0.0;
  if (!find_number(json, "register_per_s", &base_rate) ||
      !find_number(json, "rss_mib", &base_rss)) {
    std::fprintf(stderr, "coldstart_scale: baseline %s missing fields\n",
                 path.c_str());
    return 1;
  }
  const double floor = base_rate * (1.0 - tolerance);
  if (fresh.register_per_s < floor) {
    std::fprintf(stderr,
                 "coldstart_scale: REGRESSION — %.0f registrations/s is "
                 "below %.0f (baseline %.0f minus %.0f%% tolerance)\n",
                 fresh.register_per_s, floor, base_rate, tolerance * 100.0);
    return 1;
  }
  const double ceiling = base_rss * (1.0 + tolerance);
  if (fresh.rss_mib > 0.0 && base_rss > 0.0 && fresh.rss_mib > ceiling) {
    std::fprintf(stderr,
                 "coldstart_scale: RSS GREW — %.1f MiB is above %.1f "
                 "(baseline %.1f MiB plus %.0f%% tolerance)\n",
                 fresh.rss_mib, ceiling, base_rss, tolerance * 100.0);
    return 1;
  }
  std::printf("coldstart_scale: ok — %.0f registrations/s vs baseline %.0f, "
              "rss %.1f MiB vs baseline %.1f (tolerance %.0f%%)\n",
              fresh.register_per_s, base_rate, fresh.rss_mib, base_rss,
              tolerance * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  double tolerance = 0.25;
  bool quick = false;
  bool rss_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--check") {
      check_path = next();
    } else if (flag == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (flag == "--rss-check") {
      rss_mode = true;
    } else if (flag == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: coldstart_scale [--out FILE] [--check FILE] "
                   "[--tolerance X] [--rss-check] [--quick]\n");
      return 2;
    }
  }

  const std::uint64_t n = quick ? 50'000 : 1'000'000;
  const int periods = quick ? 2 : 4;

  if (rss_mode) {
    return rss_check(n, periods, quick ? 4 : 6);
  }

  Results r;
  r.containers = n;
  cold_start(n, periods, &r);
  r.rss_mib = static_cast<double>(current_rss_kib()) / 1024.0;

  const std::string json = to_json(r);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  if (!check_path.empty() && !quick) {
    return check_against(check_path, r, tolerance);
  }
  return 0;
}
