// Figure 2: Escra's CPU tracking ability under a dynamic workload.
//
// Reproduces the paper's sysbench experiment: one container whose workload
// saturates 1-4 CPUs in phases over ~40 seconds, managed by Escra with the
// paper's tunables (kappa 0.8, gamma 0.2, Y 20). Prints a time series of the
// container's CPU limit and usage (in cores) every 200 ms — the two curves
// of Figure 2. The limit should hug the usage staircase, reacting within a
// few 100 ms periods at each phase change.

#include <cstdio>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "exp/report.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

using namespace escra;

namespace {

// sysbench --threads=k: k runnable CPU-bound workers. Modelled as a
// saturating backlog with parallelism switched per phase.
class SysbenchDriver {
 public:
  SysbenchDriver(sim::Simulation& sim, cluster::Container& container)
      : sim_(sim), container_(container) {
    // Keep the queue saturated: top it up every 50 ms with enough work per
    // active thread.
    sim_.schedule_every(sim::milliseconds(50), sim::milliseconds(50), [this] {
      if (threads_ == 0) return;
      while (container_.queue_depth() < static_cast<std::size_t>(threads_)) {
        container_.submit(sim::seconds(10), 0, nullptr);
      }
    });
  }

  void set_threads(int threads) { threads_ = threads; }

 private:
  sim::Simulation& sim_;
  cluster::Container& container_;
  int threads_ = 0;
};

}  // namespace

int main() {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  k8s.add_node(cluster::NodeConfig{.cores = 8.0});

  cluster::ContainerSpec spec;
  spec.name = "sysbench";
  spec.max_parallelism = 4.0;
  spec.startup_cpu = 0;
  cluster::Container& c = k8s.create_container(spec, 1.0, 512 * memcg::kMiB);

  core::EscraConfig cfg;  // kappa 0.8, gamma 0.2, upsilon 20 (Section VI-A)
  core::EscraSystem escra(simulation, network, k8s, /*global_cpu=*/6.0,
                          /*global_mem=*/2 * memcg::kGiB, cfg);
  escra.manage({&c});
  escra.start();

  SysbenchDriver driver(simulation, c);
  // The paper's trace saturates 1-4 CPUs at any one time over ~40 s.
  const int phases[] = {1, 3, 2, 4, 1, 4, 2, 3};
  for (int i = 0; i < 8; ++i) {
    simulation.schedule_at(sim::seconds(i * 5),
                           [&driver, t = phases[i]] { driver.set_threads(t); });
  }

  exp::print_section("Figure 2: CPU limit vs usage under dynamic sysbench load");
  std::printf("%8s %10s %10s\n", "time_s", "limit", "usage");
  sim::Duration prev_consumed = 0;
  simulation.schedule_every(sim::milliseconds(200), sim::milliseconds(200), [&] {
    const sim::Duration consumed = c.cpu_cgroup().total_consumed();
    const double usage = static_cast<double>(consumed - prev_consumed) /
                         static_cast<double>(sim::milliseconds(200));
    prev_consumed = consumed;
    std::printf("%8.1f %10.2f %10.2f\n", sim::to_seconds(simulation.now()),
                c.cpu_cgroup().limit_cores(), usage);
  });

  simulation.run_until(sim::seconds(40));

  std::printf("\nscale-ups: %llu  scale-downs: %llu  telemetry msgs: %llu\n",
              static_cast<unsigned long long>(escra.allocator().cpu_scale_ups()),
              static_cast<unsigned long long>(escra.allocator().cpu_scale_downs()),
              static_cast<unsigned long long>(
                  network.stats(net::Channel::kCpuTelemetry).messages));
  std::printf("expected shape: the limit staircases with the 1/3/2/4-thread "
              "phases,\nreacting within a few 100 ms periods (paper Fig. 2).\n");
  return 0;
}
