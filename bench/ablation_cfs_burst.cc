// Ablation: CFS burst (cpu.cfs_burst_us, Linux >= 5.14) as the kernel's own
// partial answer to static over-throttling. Burst lets a statically-limited
// container carry unused quota into the next period, absorbing *sub-second*
// spikes — but it cannot absorb *sustained* demand shifts, which is where
// event-driven reallocation is still needed. Compares static-1.5x, static
// with a full-quota burst budget, and Escra on the burst workload.

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"

using namespace escra;

int main() {
  const auto run = [](workload::WorkloadKind workload, exp::PolicyKind policy,
                      double burst_factor) {
    exp::MicroserviceConfig cfg;
    cfg.benchmark = app::Benchmark::kTeastore;
    cfg.workload = workload;
    cfg.policy = policy;
    cfg.static_cfs_burst_factor = burst_factor;
    cfg.duration = sim::seconds(60);
    return exp::run_microservice(cfg);
  };

  const struct {
    const char* label;
    exp::PolicyKind policy;
    double burst;
  } cases[] = {
      {"static-1.5x", exp::PolicyKind::kStatic, 0.0},
      {"static-1.5x + burst=quota", exp::PolicyKind::kStatic, 1.0},
      {"escra", exp::PolicyKind::kEscra, 0.0},
  };
  for (const auto workload :
       {workload::WorkloadKind::kExp, workload::WorkloadKind::kBurst}) {
    exp::print_section(std::string("Ablation: cfs_burst, Teastore, ") +
                       workload::workload_name(workload) + " workload");
    std::vector<std::vector<std::string>> rows;
    for (const auto& c : cases) {
      const exp::RunResult r = run(workload, c.policy, c.burst);
      rows.push_back({c.label, exp::fmt(r.throughput_rps, 1),
                      exp::fmt(r.p99_latency_ms, 1),
                      exp::fmt(r.p999_latency_ms, 1),
                      exp::fmt(r.cpu_slack_cores.percentile(50), 2),
                      std::to_string(r.failed)});
    }
    exp::print_table({"config", "tput req/s", "p99 ms", "p99.9 ms",
                      "cpu-slack p50", "fails"},
                     rows);
  }
  std::printf(
      "\nexpected shape: burst helps static with *sub-second* spikes (the\n"
      "exp workload's variance rides the carried quota) but cannot absorb a\n"
      "*sustained* demand shift (the 10-second bursts), and it does nothing\n"
      "for static's slack; Escra gets both the tail and the slack.\n");
  return 0;
}
