// Figure 5: CPU absolute-slack CDFs comparing Escra, Autopilot, and static
// allocation for the paper's four highlighted (application, workload) pairs:
//   (a) TrainTicket-Fixed   (b) Teastore-Alibaba
//   (c) HipsterShop-Exp     (d) MediaMicroservice-Burst
// Slack = per-container CPU limit minus usage, sampled per second and pooled
// across the application's containers (cores).

#include <cstdio>

#include "exp/report.h"
#include "grid.h"

using namespace escra;
using bench::grid_cell;

namespace {

void plot(const char* tag, app::Benchmark a, workload::WorkloadKind w) {
  std::printf("\n--- %s ---\n", tag);
  for (const auto p : {exp::PolicyKind::kEscra, exp::PolicyKind::kAutopilot,
                       exp::PolicyKind::kStatic}) {
    const exp::RunResult& r = grid_cell(a, w, p);
    exp::print_cdf(std::string("cpu-slack-cores ") + r.policy_name,
                   r.cpu_slack_cores, 15);
    std::printf("   p50=%.2f p80=%.2f p99=%.2f cores\n",
                r.cpu_slack_cores.percentile(50),
                r.cpu_slack_cores.percentile(80),
                r.cpu_slack_cores.percentile(99));
  }
}

}  // namespace

int main() {
  // The four highlighted cells under all three policies, in parallel.
  bench::grid_prefetch_pairs(
      {{app::Benchmark::kTrainTicket, workload::WorkloadKind::kFixed},
       {app::Benchmark::kTeastore, workload::WorkloadKind::kAlibaba},
       {app::Benchmark::kHipster, workload::WorkloadKind::kExp},
       {app::Benchmark::kMedia, workload::WorkloadKind::kBurst}},
      {exp::PolicyKind::kEscra, exp::PolicyKind::kAutopilot,
       exp::PolicyKind::kStatic},
      /*jobs=*/0);
  exp::print_section("Figure 5: CPU slack CDFs (limit - usage, cores)");
  plot("(a) TrainTicket - Fixed", app::Benchmark::kTrainTicket,
       workload::WorkloadKind::kFixed);
  plot("(b) Teastore - Alibaba", app::Benchmark::kTeastore,
       workload::WorkloadKind::kAlibaba);
  plot("(c) HipsterShop - Exp", app::Benchmark::kHipster,
       workload::WorkloadKind::kExp);
  plot("(d) MediaMicroservice - Burst", app::Benchmark::kMedia,
       workload::WorkloadKind::kBurst);
  std::printf(
      "\nexpected shape (paper Fig. 5): Escra's CDF rises far left of the\n"
      "others (median ~0.1-0.2 cores vs ~0.5-2.5 for static/autopilot).\n");
  return 0;
}
