// Figure 7: serverless latency CDFs (Section VI-G).
//   (a) ImageProcess per-request latency, OpenWhisk vs OpenWhisk+Escra
//       (1 request / 0.8 s for 10 minutes, 4 iterations each starting cold).
//   (b) GridSearch whole-job latency for OpenWhisk, OpenWhisk+Escra with the
//       same resources, and OpenWhisk+Escra with 80% of the resource limits.

#include <cstdio>

#include "exp/report.h"
#include "exp/serverless.h"

using namespace escra;

int main() {
  exp::print_section("Figure 7a: ImageProcess request latency CDF (ms)");
  for (const auto mode :
       {exp::ServerlessMode::kOpenWhisk, exp::ServerlessMode::kEscra}) {
    exp::ImageProcessConfig cfg;
    cfg.mode = mode;
    const exp::ImageProcessResult r = exp::run_image_process(cfg);
    exp::print_latency_cdf(exp::serverless_mode_name(mode), r.latency, 15);
    std::printf("   n=%llu fail=%llu cold-starts=%llu mean=%.0fms p99=%.0fms\n",
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.cold_starts),
                r.mean_latency_ms,
                static_cast<double>(r.latency.percentile(99)) / 1000.0);
  }
  std::printf(
      "(paper: +Escra mean 1.99 s vs 2.12 s alone; similar 99th%%ile tails)\n");

  exp::print_section("Figure 7b: GridSearch application latency CDF (s)");
  for (const auto mode :
       {exp::ServerlessMode::kOpenWhisk, exp::ServerlessMode::kEscra,
        exp::ServerlessMode::kEscraReduced}) {
    exp::GridSearchConfig cfg;
    cfg.mode = mode;
    const exp::GridSearchResult r = exp::run_grid_search(cfg);
    exp::print_cdf(exp::serverless_mode_name(mode), r.job_latency_s, 10);
    std::printf("   mean=%.1fs  p99=%.1fs  task-failures=%llu\n",
                r.mean_latency_s, r.job_latency_s.percentile(99),
                static_cast<unsigned long long>(r.tasks_failed));
  }
  std::printf(
      "(paper: ~300 s mean for cases 1 and 2; ~1%% higher for the 80%% case;\n"
      " Escra+OpenWhisk slightly better at the 99th percentile)\n");
  return 0;
}
