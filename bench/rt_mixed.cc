// Mixed-criticality benchmark: admitted real-time reservations against a
// node saturated by best-effort neighbors.
//
// One pool (6 cores, 6 members, one 8-core node), same seed, same traffic:
// members 0 and 1 are "critical" — each runs a 30 ms / 200 ms periodic job
// (a 0.15-core density floor); members 2..5 are best-effort saturators
// whose FIFO demand (~16 cores of steady submissions) permanently exceeds
// the pool. Two arms:
//
//   unprotected  the critical containers run the deadline job model but
//                hold NO reservation: the κ loop reclaims them between
//                jobs, the saturators absorb every grant, and the jobs
//                miss — this arm proves the pressure is real, so the rt
//                arm's zero can't be vacuous;
//   rt           the same containers are admitted through
//                Controller::admit_rt at 1 s: the floor enters the book,
//                the allocator never reclaims below it, and the RT lane's
//                strict priority turns the floor into met deadlines.
//
// Asserted, not just reported (the benchmark is a regression test):
//
//   - unprotected arm: >= 1 deadline miss (saturation actually bites);
//   - rt arm: both admissions succeed, ZERO deadline misses across every
//     admitted container, the best-effort neighbors still complete work
//     (the node stays saturated — reservations degrade, never starve,
//     their neighbors), and the InvariantChecker finds nothing;
//   - both arms: pool utilization >= 90% (the floors don't strand pool).
//
// With --check BASELINE.json the run additionally verifies byte-exact
// determinism against the committed baseline (full mode only).
//
//   rt_mixed [--out FILE] [--check FILE] [--quick]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cfs/rt.h"
#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "exp/fairness.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"

using namespace escra;

namespace {

// 14 members over 6 cores puts the fair share (~0.43 cores) strictly below
// the 0.5-core reservation floor: without a reservation the κ loop's
// fairness itself is what starves the deadline job — the sharpest version
// of the mixed-criticality problem, since no tenant is misbehaving.
constexpr double kPoolCores = 6.0;
constexpr int kMembers = 14;
constexpr int kCritical = 2;  // members 0..kCritical-1 run the RT job

cfs::RtSpec critical_spec() {
  cfs::RtSpec spec;
  spec.runtime = sim::milliseconds(100);
  spec.deadline = sim::milliseconds(200);
  spec.period = sim::milliseconds(200);
  return spec;
}

// Best-effort saturation: every 100 ms each saturator queues four 100 ms
// jobs — ~4 cores of standing demand per member, ~16 across the pool's 6.
// Whatever the critical floors don't hold, these absorb instantly.
void drive_saturator(sim::Simulation& sim, cluster::Container* c, int phase,
                     std::uint64_t* completed) {
  sim.schedule_every(sim::milliseconds(100 + 7 * phase),
                     sim::milliseconds(100), [c, completed] {
                       for (int j = 0; j < 4; ++j) {
                         c->submit(sim::milliseconds(100), 0,
                                   [completed](bool ok) {
                                     if (ok) ++*completed;
                                   });
                       }
                     });
}

struct ArmResult {
  std::uint64_t misses = 0;         // summed over the critical members
  std::uint64_t jobs_released = 0;  // RT jobs the deadline model released
  std::uint64_t jobs_completed = 0;
  std::uint64_t be_completed = 0;  // best-effort submissions that finished
  std::uint64_t admitted = 0;      // rt arm: reservations accepted
  double reserved_cores = 0.0;
  double utilization = 0.0;
  std::uint64_t events = 0;        // determinism anchor
  std::string checker_report;      // empty = ok
};

ArmResult run_arm(bool reserve, sim::Duration horizon) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  core::EscraSystem escra(sim, network, k8s, kPoolCores, 4LL * memcg::kGiB,
                          core::EscraConfig{});
  k8s.add_node({.cores = 8.0});

  std::vector<cluster::Container*> members;
  cluster::ContainerSpec spec;
  spec.base_memory = 96 * memcg::kMiB;
  spec.max_parallelism = 8.0;
  for (int i = 0; i < kMembers; ++i) {
    spec.name = "m" + std::to_string(i);
    members.push_back(&k8s.create_container(spec, 1.0, 512 * memcg::kMiB));
  }
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(members);
  escra.start();

  check::InvariantChecker checker(escra, network, observer);

  ArmResult r;
  if (reserve) {
    // Admission through the controller: the floor is booked, the WAL image
    // carries it, and the allocator's reclaim paths stop at it.
    sim.schedule_at(sim::seconds(1), [&escra, &members, &r] {
      for (int i = 0; i < kCritical; ++i) {
        if (escra.admit_rt(*members[i], critical_spec()) ==
            core::Controller::RtAdmit::kAdmitted) {
          ++r.admitted;
        }
      }
    });
  } else {
    // Deadline job model armed, no reservation: the control loop sees an
    // ordinary best-effort member and reclaims it the moment it idles.
    sim.schedule_at(sim::seconds(1), [&members] {
      for (int i = 0; i < kCritical; ++i) {
        members[i]->set_rt(critical_spec());
      }
    });
  }
  for (int i = kCritical; i < kMembers; ++i) {
    drive_saturator(sim, members[i], i, &r.be_completed);
  }

  exp::FairnessMeter meter(sim, escra.app());
  for (int i = 0; i < kMembers; ++i) {
    meter.track(members[i]->id(), /*greedy=*/false);
  }
  meter.start(sim::seconds(5));  // skip the cold-start transient

  sim.run_until(horizon);
  checker.check_now();

  for (int i = 0; i < kCritical; ++i) {
    r.misses += members[i]->deadline_misses();
    r.jobs_released += members[i]->rt_jobs_released();
    r.jobs_completed += members[i]->rt_jobs_completed();
  }
  r.reserved_cores = escra.rt_reserved_cores();
  r.utilization = meter.report().cpu_utilization;
  r.events = sim.executed_events();
  if (!checker.ok()) r.checker_report = checker.report();
  return r;
}

std::string to_json(const ArmResult& un, const ArmResult& rt) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"rt_mixed\",\n"
                "  \"unprotected_misses\": %" PRIu64 ",\n"
                "  \"unprotected_jobs_released\": %" PRIu64 ",\n"
                "  \"unprotected_be_completed\": %" PRIu64 ",\n"
                "  \"unprotected_utilization\": %.4f,\n"
                "  \"unprotected_events\": %" PRIu64 ",\n"
                "  \"rt_admitted\": %" PRIu64 ",\n"
                "  \"rt_reserved_cores\": %.2f,\n"
                "  \"rt_misses\": %" PRIu64 ",\n"
                "  \"rt_jobs_released\": %" PRIu64 ",\n"
                "  \"rt_jobs_completed\": %" PRIu64 ",\n"
                "  \"rt_be_completed\": %" PRIu64 ",\n"
                "  \"rt_utilization\": %.4f,\n"
                "  \"rt_events\": %" PRIu64 "\n"
                "}\n",
                un.misses, un.jobs_released, un.be_completed, un.utilization,
                un.events, rt.admitted, rt.reserved_cores, rt.misses,
                rt.jobs_released, rt.jobs_completed, rt.be_completed,
                rt.utilization, rt.events);
  return buf;
}

bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

int check_against(const std::string& path, const ArmResult& un,
                  const ArmResult& rt) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rt_mixed: cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const struct {
    const char* key;
    double fresh;
  } fields[] = {
      {"unprotected_misses", static_cast<double>(un.misses)},
      {"unprotected_events", static_cast<double>(un.events)},
      {"rt_misses", static_cast<double>(rt.misses)},
      {"rt_jobs_completed", static_cast<double>(rt.jobs_completed)},
      {"rt_events", static_cast<double>(rt.events)},
  };
  for (const auto& f : fields) {
    double recorded = 0.0;
    if (!find_number(json, f.key, &recorded)) {
      std::fprintf(stderr, "rt_mixed: baseline %s missing %s\n", path.c_str(),
                   f.key);
      return 1;
    }
    // Both arms are deterministic: miss/job/event counts must match the
    // committed baseline bit for bit, not within a tolerance.
    if (recorded != f.fresh) {
      std::fprintf(stderr,
                   "rt_mixed: DETERMINISM DRIFT — %s is %.0f, baseline "
                   "recorded %.0f\n",
                   f.key, f.fresh, recorded);
      return 1;
    }
  }
  std::printf("rt_mixed: ok — matches baseline exactly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--check") {
      check_path = next();
    } else if (flag == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: rt_mixed [--out FILE] [--check FILE] [--quick]\n");
      return 2;
    }
  }

  const sim::Duration horizon = quick ? sim::seconds(20) : sim::seconds(60);
  const ArmResult un = run_arm(/*reserve=*/false, horizon);
  const ArmResult rt = run_arm(/*reserve=*/true, horizon);

  const std::string json = to_json(un, rt);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }

  int rc = 0;
  const auto fail = [&rc](const char* msg) {
    std::fprintf(stderr, "rt_mixed: %s\n", msg);
    rc = 1;
  };
  char msg[256];

  // The saturation is real: without a reservation the deadline jobs miss.
  if (un.jobs_released == 0) fail("unprotected arm released no jobs (vacuous)");
  if (un.misses == 0) {
    fail("unprotected arm missed no deadlines — saturation isn't biting, "
         "the rt arm's zero would be vacuous");
  }

  // The reservation holds: every admission lands, no admitted container
  // misses a deadline, and the best-effort neighbors keep completing work.
  if (rt.admitted != kCritical) {
    std::snprintf(msg, sizeof(msg),
                  "rt arm admitted %" PRIu64 "/%d reservations", rt.admitted,
                  kCritical);
    fail(msg);
  }
  if (rt.jobs_released == 0) fail("rt arm released no jobs (vacuous)");
  if (rt.misses != 0) {
    std::snprintf(msg, sizeof(msg),
                  "rt arm missed %" PRIu64 " deadline(s) — the reservation "
                  "did not hold under saturation",
                  rt.misses);
    fail(msg);
  }
  if (rt.be_completed == 0) {
    fail("rt arm starved its best-effort neighbors completely");
  }
  for (const ArmResult* arm : {&un, &rt}) {
    if (arm->utilization < 0.90) {
      std::snprintf(msg, sizeof(msg),
                    "%s arm pool utilization %.3f < 0.90 — capacity stranded",
                    arm == &un ? "unprotected" : "rt", arm->utilization);
      fail(msg);
    }
  }
  if (!rt.checker_report.empty()) {
    std::fprintf(stderr, "rt_mixed: invariant violations in rt arm:\n%s",
                 rt.checker_report.c_str());
    rc = 1;
  }

  if (rc == 0 && !check_path.empty() && !quick) {
    rc = check_against(check_path, un, rt);
  }
  return rc;
}
