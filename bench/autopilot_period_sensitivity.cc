// Section VI-A: Autopilot update-period sensitivity. "The throughput of
// HipsterShop with Autopilot at 1, 10, 30, and 60 second update periods
// degrades from 422 to 382 to 279 to 108 req/sec" — coarser control loops
// cost performance, which is why the paper compares against the 1-second
// best case. This bench regenerates that sweep (plus the latency view).

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"

using namespace escra;

int main() {
  exp::print_section(
      "Autopilot update-period sensitivity (HipsterShop, Alibaba workload)");
  std::vector<std::vector<std::string>> rows;
  for (const int period_s : {1, 10, 30, 60}) {
    exp::MicroserviceConfig cfg;
    cfg.benchmark = app::Benchmark::kHipster;
    // The Alibaba trace's sustained ramps are where a stale control loop
    // hurts most: limits set a minute ago are wrong for the whole ramp.
    cfg.workload = workload::WorkloadKind::kAlibaba;
    cfg.policy = exp::PolicyKind::kAutopilot;
    cfg.autopilot_period = sim::seconds(period_s);
    cfg.duration = sim::seconds(120);  // several trace ramps per period
    const exp::RunResult r = exp::run_microservice(cfg);
    rows.push_back({std::to_string(period_s) + "s",
                    exp::fmt(r.throughput_rps, 1),
                    exp::fmt(r.p999_latency_ms, 1),
                    exp::fmt(r.p50_latency_ms, 1),
                    std::to_string(r.oom_kills),
                    std::to_string(r.failed)});
  }
  exp::print_table({"update period", "tput req/s", "p99.9 ms", "p50 ms",
                    "ooms", "fails"},
                   rows);
  std::printf(
      "\nexpected shape (paper: throughput degrades 422 -> 382 -> 279 -> 108\n"
      "req/s at 1/10/30/60 s): service degrades monotonically as the update\n"
      "period coarsens — here it shows up as tail latency, since our client\n"
      "model retries within a 2 s timeout; 1 s is Autopilot's best case.\n");
  return 0;
}
