// Shared helper for the microservice evaluation grid (Sections VI-B..VI-E):
// runs every (application x workload) cell under a set of policies and
// caches results within the process so a bench binary computes each cell
// once.
#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "exp/microservice.h"

namespace escra::bench {

inline const std::vector<app::Benchmark> kApps = {
    app::Benchmark::kMedia, app::Benchmark::kHipster,
    app::Benchmark::kTrainTicket, app::Benchmark::kTeastore};

inline const std::vector<workload::WorkloadKind> kWorkloads = {
    workload::WorkloadKind::kAlibaba, workload::WorkloadKind::kBurst,
    workload::WorkloadKind::kExp, workload::WorkloadKind::kFixed};

// Runs (or returns the cached) result for one grid cell.
inline const exp::RunResult& grid_cell(app::Benchmark a,
                                       workload::WorkloadKind w,
                                       exp::PolicyKind p,
                                       sim::Duration duration = sim::seconds(60)) {
  static std::map<std::tuple<int, int, int>, exp::RunResult> cache;
  const auto key = std::tuple(static_cast<int>(a), static_cast<int>(w),
                              static_cast<int>(p));
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  exp::MicroserviceConfig cfg;
  cfg.benchmark = a;
  cfg.workload = w;
  cfg.policy = p;
  cfg.duration = duration;
  return cache.emplace(key, exp::run_microservice(cfg)).first->second;
}

}  // namespace escra::bench
