// Shared helper for the microservice evaluation grid (Sections VI-B..VI-E):
// runs every (application x workload) cell under a set of policies and
// caches results within the process so a bench binary computes each cell
// once. Cells are independent simulations, so `grid_prefetch` can fill the
// cache across a sweep::Runner thread pool; the serial reporting pass that
// follows reads pure cache hits, making output identical at any job count.
#pragma once

#include <tuple>
#include <vector>

#include "exp/microservice.h"
#include "sweep/cache.h"

namespace escra::bench {

inline const std::vector<app::Benchmark> kApps = {
    app::Benchmark::kMedia, app::Benchmark::kHipster,
    app::Benchmark::kTrainTicket, app::Benchmark::kTeastore};

inline const std::vector<workload::WorkloadKind> kWorkloads = {
    workload::WorkloadKind::kAlibaba, workload::WorkloadKind::kBurst,
    workload::WorkloadKind::kExp, workload::WorkloadKind::kFixed};

using GridKey = std::tuple<int, int, int, sim::Duration>;

inline sweep::ResultCache<GridKey, exp::RunResult>& grid_cache() {
  static sweep::ResultCache<GridKey, exp::RunResult> cache;
  return cache;
}

inline exp::RunResult run_grid_key(const GridKey& key) {
  exp::MicroserviceConfig cfg;
  cfg.benchmark = static_cast<app::Benchmark>(std::get<0>(key));
  cfg.workload = static_cast<workload::WorkloadKind>(std::get<1>(key));
  cfg.policy = static_cast<exp::PolicyKind>(std::get<2>(key));
  cfg.duration = std::get<3>(key);
  return exp::run_microservice(cfg);
}

// Runs (or returns the cached) result for one grid cell.
inline const exp::RunResult& grid_cell(
    app::Benchmark a, workload::WorkloadKind w, exp::PolicyKind p,
    sim::Duration duration = sim::seconds(60)) {
  return grid_cache().get(GridKey{static_cast<int>(a), static_cast<int>(w),
                                  static_cast<int>(p), duration},
                          run_grid_key);
}

// Fills the cache for every (app x workload) cell under `policies` in
// parallel (jobs = 0 means hardware concurrency).
inline void grid_prefetch(const std::vector<exp::PolicyKind>& policies,
                          int jobs,
                          sim::Duration duration = sim::seconds(60)) {
  std::vector<GridKey> keys;
  keys.reserve(kApps.size() * kWorkloads.size() * policies.size());
  for (const app::Benchmark a : kApps) {
    for (const workload::WorkloadKind w : kWorkloads) {
      for (const exp::PolicyKind p : policies) {
        keys.push_back(GridKey{static_cast<int>(a), static_cast<int>(w),
                               static_cast<int>(p), duration});
      }
    }
  }
  grid_cache().prefetch(keys, jobs, run_grid_key);
}

// Prefetch for benches that only touch selected (app, workload) pairs.
inline void grid_prefetch_pairs(
    const std::vector<std::pair<app::Benchmark, workload::WorkloadKind>>& pairs,
    const std::vector<exp::PolicyKind>& policies, int jobs,
    sim::Duration duration = sim::seconds(60)) {
  std::vector<GridKey> keys;
  keys.reserve(pairs.size() * policies.size());
  for (const auto& [a, w] : pairs) {
    for (const exp::PolicyKind p : policies) {
      keys.push_back(GridKey{static_cast<int>(a), static_cast<int>(w),
                             static_cast<int>(p), duration});
    }
  }
  grid_cache().prefetch(keys, jobs, run_grid_key);
}

}  // namespace escra::bench
