// Table I: average performance increase and average slack reduction between
// Static-1.5x and Escra and between Autopilot and Escra, averaged over the
// full grid of four applications x four workloads (Section VI-B..E).
//
// Also reports the Section VI-E takeaway: OOM kill counts per policy across
// all runs (the paper: Escra saw zero OOMs in all 32 experiments, Autopilot
// up to 8 in a single one).

#include <cstdio>

#include "exp/report.h"
#include "grid.h"

using namespace escra;
using bench::grid_cell;
using bench::kApps;
using bench::kWorkloads;

namespace {

struct Deltas {
  double latency = 0, tput = 0;
  double cpu50 = 0, cpu99 = 0, mem50 = 0, mem99 = 0;
};

Deltas against(exp::PolicyKind baseline) {
  Deltas sum;
  int n = 0;
  for (const auto a : kApps) {
    for (const auto w : kWorkloads) {
      const exp::RunResult& base = grid_cell(a, w, baseline);
      const exp::RunResult& ours = grid_cell(a, w, exp::PolicyKind::kEscra);
      sum.latency += exp::pct_decrease(base.p999_latency_ms, ours.p999_latency_ms);
      sum.tput += exp::pct_increase(base.throughput_rps, ours.throughput_rps);
      sum.cpu50 += exp::pct_decrease(base.cpu_slack_cores.percentile(50),
                                     ours.cpu_slack_cores.percentile(50));
      sum.cpu99 += exp::pct_decrease(base.cpu_slack_cores.percentile(99),
                                     ours.cpu_slack_cores.percentile(99));
      sum.mem50 += exp::pct_decrease(base.mem_slack_mib.percentile(50),
                                     ours.mem_slack_mib.percentile(50));
      sum.mem99 += exp::pct_decrease(base.mem_slack_mib.percentile(99),
                                     ours.mem_slack_mib.percentile(99));
      ++n;
    }
  }
  sum.latency /= n; sum.tput /= n; sum.cpu50 /= n;
  sum.cpu99 /= n; sum.mem50 /= n; sum.mem99 /= n;
  return sum;
}

}  // namespace

int main() {
  // Fill the whole 4x4x3 grid in parallel; everything below is cache hits.
  bench::grid_prefetch({exp::PolicyKind::kStatic, exp::PolicyKind::kAutopilot,
                        exp::PolicyKind::kEscra},
                       /*jobs=*/0);
  exp::print_section("Table I: average improvement of Escra over each baseline");
  std::printf("(positive = Escra better; paper: static row 38.0/25.4/81.3/74.2/"
              "55.0/95.9,\n autopilot row 36.1/54.5/78.3/78.6/26.7/68.9)\n\n");

  const Deltas vs_static = against(exp::PolicyKind::kStatic);
  const Deltas vs_autopilot = against(exp::PolicyKind::kAutopilot);

  exp::print_table(
      {"comparison", "avg d-lat", "avg d-tput", "d-50% cpu-slack",
       "d-99% cpu-slack", "d-50% mem-slack", "d-99% mem-slack"},
      {{"static vs escra", exp::fmt(vs_static.latency, 1) + "%",
        exp::fmt(vs_static.tput, 1) + "%", exp::fmt(vs_static.cpu50, 1) + "%",
        exp::fmt(vs_static.cpu99, 1) + "%", exp::fmt(vs_static.mem50, 1) + "%",
        exp::fmt(vs_static.mem99, 1) + "%"},
       {"autopilot vs escra", exp::fmt(vs_autopilot.latency, 1) + "%",
        exp::fmt(vs_autopilot.tput, 1) + "%",
        exp::fmt(vs_autopilot.cpu50, 1) + "%",
        exp::fmt(vs_autopilot.cpu99, 1) + "%",
        exp::fmt(vs_autopilot.mem50, 1) + "%",
        exp::fmt(vs_autopilot.mem99, 1) + "%"}});

  // Per-cell detail behind the averages.
  exp::print_section("Per-cell detail (throughput req/s | p99.9 latency ms | "
                     "median cpu/mem slack)");
  std::vector<std::vector<std::string>> rows;
  for (const auto a : kApps) {
    for (const auto w : kWorkloads) {
      for (const auto p : {exp::PolicyKind::kStatic, exp::PolicyKind::kAutopilot,
                           exp::PolicyKind::kEscra}) {
        const exp::RunResult& r = grid_cell(a, w, p);
        rows.push_back({r.app_name, r.workload_name, r.policy_name,
                        exp::fmt(r.throughput_rps, 1),
                        exp::fmt(r.p999_latency_ms, 1),
                        exp::fmt(r.cpu_slack_cores.percentile(50), 2),
                        exp::fmt(r.mem_slack_mib.percentile(50), 1),
                        std::to_string(r.oom_kills),
                        std::to_string(r.failed)});
      }
    }
  }
  exp::print_table({"app", "workload", "policy", "tput", "p99.9ms", "cpu-sl50",
                    "mem-sl50MiB", "ooms", "fails"},
                   rows);

  // Section VI-E: OOM kill counts across the whole grid.
  exp::print_section("Section VI-E: OOM kills across all 16 runs per policy");
  for (const auto p : {exp::PolicyKind::kStatic, exp::PolicyKind::kAutopilot,
                       exp::PolicyKind::kEscra}) {
    std::uint64_t total = 0, worst = 0;
    for (const auto a : kApps) {
      for (const auto w : kWorkloads) {
        const auto k = grid_cell(a, w, p).oom_kills;
        total += k;
        worst = std::max(worst, k);
      }
    }
    std::printf("  %-12s total=%llu  worst-single-run=%llu\n",
                exp::policy_name(p), static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(worst));
  }
  std::printf("(paper: Escra experienced zero OOMs in all experiments)\n");
  return 0;
}
