// Event-engine throughput benchmark.
//
// Measures the discrete-event core that every Escra experiment sits on:
//   - schedule_ns / cancel_ns: cost of arming and disarming one-shot timers
//     (the Controller's retransmit path arms one per in-flight RPC),
//   - raw_fire_eps: drain rate for pre-scheduled one-shot events,
//   - churn_ops_per_sec: the retransmit pattern — schedule, then cancel 90%
//     before firing (acks beat the timeout), fire the rest,
//   - periodic_eps: thousands of interleaved 100 ms CFS-style periods,
//   - e2e_*: a canonical 64-node, 256-container Escra cluster under steady
//     load for 5 simulated seconds — the number that bounds every sweep,
//   - e2e_scale_*: the same 64 nodes at 64 containers each (4096 total)
//     with a 1 ms per-container usage probe — the kernel-event firehose the
//     dense slot layout and coalesced per-node limit RPCs exist to absorb.
//
// Emits BENCH_sim_throughput.json-style output with --out. With --check
// BASELINE.json it re-reads the committed baseline and fails (exit 1) when
// e2e events/sec regressed by more than --tolerance (default 0.25), or when
// the e2e event count diverges at all (the scenario is deterministic, so a
// count change means the engine changed behaviour, not just speed).
//
//   sim_throughput [--out FILE] [--check FILE] [--tolerance X] [--quick]

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

using namespace escra;

namespace {

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Results {
  double schedule_ns = 0.0;
  double cancel_ns = 0.0;
  double raw_fire_eps = 0.0;
  double churn_ops_per_sec = 0.0;
  double periodic_eps = 0.0;
  std::uint64_t e2e_events = 0;
  double e2e_wall_s = 0.0;
  double e2e_eps = 0.0;
  std::uint64_t e2e_scale_events = 0;
  double e2e_scale_wall_s = 0.0;
  double e2e_scale_eps = 0.0;
};

// --- micro: schedule / cancel / drain ------------------------------------

void bench_schedule_cancel(std::size_t n, Results& r) {
  {
    sim::Simulation sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      // Spread over ~26 s of sim time: exercises several wheel levels.
      handles.push_back(sim.schedule_at(
          static_cast<sim::TimePoint>((i * 401) % 26'000'000), [] {}));
    }
    r.schedule_ns = wall_seconds(t0) * 1e9 / static_cast<double>(n);
    const auto t1 = std::chrono::steady_clock::now();
    for (const sim::EventHandle& h : handles) sim.cancel(h);
    r.cancel_ns = wall_seconds(t1) * 1e9 / static_cast<double>(n);
  }
  {
    sim::Simulation sim;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<sim::TimePoint>((i * 401) % 26'000'000),
                      [] {});
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t fired = sim.run_all();
    r.raw_fire_eps = static_cast<double>(fired) / wall_seconds(t0);
  }
}

// --- micro: retransmit-style churn ---------------------------------------

void bench_churn(std::size_t n, Results& r) {
  sim::Simulation sim;
  sim::Rng rng(7);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t ops = 0;
  std::vector<sim::EventHandle> window;
  for (std::size_t i = 0; i < n; ++i) {
    window.push_back(
        sim.schedule_after(sim::milliseconds(rng.uniform_int(50, 250)), [] {}));
    ++ops;
    if (window.size() == 32) {
      // Acks arrive: cancel ~90%, let the rest fire.
      for (std::size_t k = 0; k < window.size(); ++k) {
        if (k % 10 != 0) {
          sim.cancel(window[k]);
          ++ops;
        }
      }
      window.clear();
      sim.run_until(sim.now() + sim::milliseconds(20));
    }
  }
  sim.run_all();
  r.churn_ops_per_sec = static_cast<double>(ops) / wall_seconds(t0);
}

// --- micro: interleaved periodic timers ----------------------------------

void bench_periodic(std::size_t timers, sim::Duration span, Results& r) {
  sim::Simulation sim;
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < timers; ++i) {
    // 100 ms CFS-style periods with staggered phases.
    sim.schedule_every(static_cast<sim::TimePoint>(1 + i * 97 % 100'000),
                       sim::milliseconds(100), [&fired] { ++fired; });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(span);
  r.periodic_eps = static_cast<double>(fired) / wall_seconds(t0);
}

// --- end to end: canonical 64-node cluster -------------------------------

void bench_e2e(sim::Duration duration, Results& r) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  constexpr int kNodes = 64;
  constexpr int kContainersPerNode = 4;
  for (int n = 0; n < kNodes; ++n) {
    k8s.add_node(cluster::NodeConfig{.cores = 20.0});
  }
  core::EscraSystem escra(sim, network, k8s, /*global_cpu_cores=*/512.0,
                          /*global_mem=*/256LL * memcg::kGiB);
  // Mildly lossy control RPC: exercises the retransmit timers (arm on send,
  // cancel on ack) that dominate the Controller's timer traffic.
  network.set_fault_rng(sim::Rng(0xbe4cfULL));
  network.set_drop_rate(net::Channel::kControlRpc, 0.02);

  sim::Rng root(0xe5c7a64ULL);
  std::vector<cluster::Container*> members;
  for (int c = 0; c < kNodes * kContainersPerNode; ++c) {
    cluster::ContainerSpec spec;
    spec.name = "c" + std::to_string(c);
    spec.max_parallelism = 4.0;
    spec.base_memory = 64 * memcg::kMiB;
    members.push_back(&k8s.create_container(spec, 1.0, 256 * memcg::kMiB));
  }
  escra.manage(members);
  escra.start();

  // Oscillating per-container request streams: 500 ms on / 500 ms off duty
  // cycles, phase-offset per container. Demand keeps moving, so the
  // allocator issues limit updates every CFS period — the steady-state
  // control traffic (telemetry, updates, retransmit timers) the engine must
  // sustain at cluster scale.
  struct Stream {
    cluster::Container* container;
    int phase;
    sim::Rng rng;
  };
  std::vector<Stream> streams;
  streams.reserve(members.size());
  int idx = 0;
  for (cluster::Container* c : members) streams.push_back({c, idx++, root.fork()});
  for (Stream& s : streams) {
    sim::Simulation* simp = &sim;
    sim.schedule_every(
        sim::milliseconds(1 + s.rng.uniform_int(0, 19)), sim::milliseconds(20),
        [&s, simp] {
          const bool on =
              ((simp->now() / sim::milliseconds(500)) + s.phase) % 2 == 0;
          const int batch = on ? 3 : 0;
          for (int b = 0; b < batch; ++b) {
            const double cost_ms = s.rng.lognormal(std::log(4.0), 0.8);
            s.container->submit(
                std::max<sim::Duration>(
                    1, static_cast<sim::Duration>(cost_ms * 1000.0)),
                2 * memcg::kMiB, [](bool) {});
          }
        });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(duration);
  r.e2e_wall_s = wall_seconds(t0);
  r.e2e_events = sim.executed_events();
  r.e2e_eps = static_cast<double>(r.e2e_events) / r.e2e_wall_s;
}

// --- end to end at density: 64 nodes, 4096 containers --------------------

// The paper's premise is that the kernel generates resource events at
// sub-second granularity and the control plane keeps up. This phase scales
// the canonical cluster to 64 containers per node and arms a 1 ms usage
// probe per container — the in-kernel event source — on top of the full
// Escra control loop (telemetry every CFS period, allocator decisions,
// coalesced limit pushes, retransmit timers under 2% RPC loss). The event
// mix is what a dense production node actually presents: a firehose of
// cheap per-container events punctuated by control-plane work, all of which
// lands on the interned-slot hot state rather than per-event map probes.
void bench_e2e_scale(sim::Duration duration, int containers_per_node,
                     Results& r) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  constexpr int kNodes = 64;
  for (int n = 0; n < kNodes; ++n) {
    k8s.add_node(cluster::NodeConfig{.cores = 80.0});
  }
  core::EscraSystem escra(sim, network, k8s, /*global_cpu_cores=*/8192.0,
                          /*global_mem=*/2048LL * memcg::kGiB);
  network.set_fault_rng(sim::Rng(0xbe4cfULL));
  network.set_drop_rate(net::Channel::kControlRpc, 0.02);

  sim::Rng root(0xe5c7a64ULL);
  std::vector<cluster::Container*> members;
  const int total = kNodes * containers_per_node;
  members.reserve(total);
  for (int c = 0; c < total; ++c) {
    cluster::ContainerSpec spec;
    spec.name = "d" + std::to_string(c);
    spec.max_parallelism = 4.0;
    spec.base_memory = 64 * memcg::kMiB;
    members.push_back(&k8s.create_container(spec, 1.0, 256 * memcg::kMiB));
  }
  escra.manage(members);
  escra.start();

  // One 1 ms probe per container: almost every fire is a cheap counter
  // bump; every 20th submits real work so demand keeps moving and the
  // allocator issues limit updates each period.
  struct Probe {
    cluster::Container* container;
    std::uint32_t ticks = 0;
    sim::Rng rng;
  };
  std::vector<Probe> probes;
  probes.reserve(members.size());
  for (cluster::Container* c : members) probes.push_back({c, 0, root.fork()});
  std::uint64_t probe_fires = 0;
  for (Probe& p : probes) {
    sim.schedule_every(
        static_cast<sim::TimePoint>(1 + p.rng.uniform_int(0, 999)),
        sim::milliseconds(1), [&p, &probe_fires] {
          ++probe_fires;
          if (++p.ticks % 32 == 0) {
            const double cost_ms = p.rng.lognormal(std::log(4.0), 0.8);
            p.container->submit(
                std::max<sim::Duration>(
                    1, static_cast<sim::Duration>(cost_ms * 1000.0)),
                2 * memcg::kMiB, [](bool) {});
          }
        });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(duration);
  r.e2e_scale_wall_s = wall_seconds(t0);
  r.e2e_scale_events = sim.executed_events();
  r.e2e_scale_eps =
      static_cast<double>(r.e2e_scale_events) / r.e2e_scale_wall_s;
  (void)probe_fires;
}

// --- output / baseline check ---------------------------------------------

std::string to_json(const Results& r) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"sim_throughput\",\n"
                "  \"schedule_ns\": %.1f,\n"
                "  \"cancel_ns\": %.1f,\n"
                "  \"raw_fire_eps\": %.0f,\n"
                "  \"churn_ops_per_sec\": %.0f,\n"
                "  \"periodic_eps\": %.0f,\n"
                "  \"e2e_events\": %" PRIu64 ",\n"
                "  \"e2e_wall_s\": %.3f,\n"
                "  \"e2e_eps\": %.0f,\n"
                "  \"e2e_scale_events\": %" PRIu64 ",\n"
                "  \"e2e_scale_wall_s\": %.3f,\n"
                "  \"e2e_scale_eps\": %.0f\n"
                "}\n",
                r.schedule_ns, r.cancel_ns, r.raw_fire_eps,
                r.churn_ops_per_sec, r.periodic_eps, r.e2e_events,
                r.e2e_wall_s, r.e2e_eps, r.e2e_scale_events,
                r.e2e_scale_wall_s, r.e2e_scale_eps);
  return buf;
}

// Minimal field extraction: the baseline is our own fixed-format JSON.
bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

int check_against(const std::string& path, const Results& fresh,
                  double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sim_throughput: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  double base_eps = 0.0;
  double base_events = 0.0;
  double base_scale_eps = 0.0;
  double base_scale_events = 0.0;
  if (!find_number(json, "e2e_eps", &base_eps) ||
      !find_number(json, "e2e_events", &base_events) ||
      !find_number(json, "e2e_scale_eps", &base_scale_eps) ||
      !find_number(json, "e2e_scale_events", &base_scale_events)) {
    std::fprintf(stderr, "sim_throughput: baseline %s missing fields\n",
                 path.c_str());
    return 1;
  }
  if (static_cast<double>(fresh.e2e_events) != base_events ||
      static_cast<double>(fresh.e2e_scale_events) != base_scale_events) {
    std::fprintf(stderr,
                 "sim_throughput: DETERMINISM DRIFT — e2e executed %" PRIu64
                 "/%" PRIu64 " events, baseline recorded %.0f/%.0f\n",
                 fresh.e2e_events, fresh.e2e_scale_events, base_events,
                 base_scale_events);
    return 1;
  }
  const double floor = base_eps * (1.0 - tolerance);
  if (fresh.e2e_eps < floor) {
    std::fprintf(stderr,
                 "sim_throughput: REGRESSION — e2e %.0f events/s is below "
                 "%.0f (baseline %.0f minus %.0f%% tolerance)\n",
                 fresh.e2e_eps, floor, base_eps, tolerance * 100.0);
    return 1;
  }
  const double scale_floor = base_scale_eps * (1.0 - tolerance);
  if (fresh.e2e_scale_eps < scale_floor) {
    std::fprintf(stderr,
                 "sim_throughput: REGRESSION — e2e_scale %.0f events/s is "
                 "below %.0f (baseline %.0f minus %.0f%% tolerance)\n",
                 fresh.e2e_scale_eps, scale_floor, base_scale_eps,
                 tolerance * 100.0);
    return 1;
  }
  std::printf("sim_throughput: ok — e2e %.0f events/s vs baseline %.0f, "
              "e2e_scale %.0f vs %.0f (tolerance %.0f%%)\n",
              fresh.e2e_eps, base_eps, fresh.e2e_scale_eps, base_scale_eps,
              tolerance * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  double tolerance = 0.25;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--check") {
      check_path = next();
    } else if (flag == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (flag == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: sim_throughput [--out FILE] [--check FILE] "
                   "[--tolerance X] [--quick]\n");
      return 2;
    }
  }

  Results r;
  const std::size_t micro_n = quick ? 100'000 : 2'000'000;
  bench_schedule_cancel(micro_n, r);
  bench_churn(quick ? 50'000 : 1'000'000, r);
  bench_periodic(quick ? 500 : 5'000,
                 quick ? sim::seconds(10) : sim::seconds(60), r);
  bench_e2e(quick ? sim::seconds(1) : sim::seconds(5), r);
  bench_e2e_scale(quick ? sim::milliseconds(500) : sim::seconds(2),
                  quick ? 8 : 64, r);

  const std::string json = to_json(r);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  if (!check_path.empty() && !quick) {
    return check_against(check_path, r, tolerance);
  }
  return 0;
}
