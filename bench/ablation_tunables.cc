// Ablation: Escra's tunables (Section IV-D1 / VI-F). The paper reports that
// workloads with high CPU variance prefer a larger Y and smaller gamma and
// kappa, and uses Y=35 (vs 20) for the bursty short-lived serverless app.
// This bench sweeps each tunable on a bursty microservice run to regenerate
// those sensitivities.

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"

using namespace escra;

namespace {

exp::RunResult run_with(double kappa, double gamma, double upsilon,
                        std::size_t window) {
  exp::MicroserviceConfig cfg;
  cfg.benchmark = app::Benchmark::kTeastore;
  cfg.workload = workload::WorkloadKind::kBurst;
  cfg.policy = exp::PolicyKind::kEscra;
  cfg.escra.kappa = kappa;
  cfg.escra.gamma = gamma;
  cfg.escra.upsilon = upsilon;
  cfg.escra.window_periods = window;
  cfg.duration = sim::seconds(60);
  return exp::run_microservice(cfg);
}

void row(std::vector<std::vector<std::string>>& rows, const std::string& tag,
         const exp::RunResult& r) {
  rows.push_back({tag, exp::fmt(r.p999_latency_ms, 1),
                  exp::fmt(r.p99_latency_ms, 1),
                  exp::fmt(r.throughput_rps, 1),
                  exp::fmt(r.cpu_slack_cores.percentile(50), 2),
                  exp::fmt(r.cpu_slack_cores.percentile(99), 2)});
}

}  // namespace

int main() {
  std::vector<std::vector<std::string>> rows;

  exp::print_section("Ablation: Y (scale-up rate), Teastore-Burst");
  rows.clear();
  for (const double upsilon : {5.0, 10.0, 20.0, 35.0, 60.0}) {
    row(rows, "Y=" + exp::fmt(upsilon, 0), run_with(0.8, 0.2, upsilon, 5));
  }
  exp::print_table({"setting", "p99.9 ms", "p99 ms", "tput", "cpu-sl p50",
                    "cpu-sl p99"},
                   rows);
  std::printf("(larger Y reaches burst demand in fewer periods: tail latency\n"
              " falls; slack rises slightly from overshoot)\n");

  exp::print_section("Ablation: kappa (scale-down rate)");
  rows.clear();
  for (const double kappa : {0.2, 0.5, 0.8, 1.0}) {
    row(rows, "kappa=" + exp::fmt(kappa, 1), run_with(kappa, 0.2, 20.0, 5));
  }
  exp::print_table({"setting", "p99.9 ms", "p99 ms", "tput", "cpu-sl p50",
                    "cpu-sl p99"},
                   rows);
  std::printf("(larger kappa reclaims faster: less slack, slightly riskier\n"
              " tails on re-bursts)\n");

  exp::print_section("Ablation: gamma (scale-down trigger, cores)");
  rows.clear();
  for (const double gamma : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    row(rows, "gamma=" + exp::fmt(gamma, 2), run_with(0.8, gamma, 20.0, 5));
  }
  exp::print_table({"setting", "p99.9 ms", "p99 ms", "tput", "cpu-sl p50",
                    "cpu-sl p99"},
                   rows);
  std::printf("(gamma is the retained headroom: smaller means less slack but\n"
              " more throttles)\n");

  exp::print_section("Ablation: window n (periods)");
  rows.clear();
  for (const std::size_t window : {std::size_t{1}, std::size_t{3},
                                   std::size_t{5}, std::size_t{10},
                                   std::size_t{20}}) {
    row(rows, "n=" + std::to_string(window), run_with(0.8, 0.2, 20.0, window));
  }
  exp::print_table({"setting", "p99.9 ms", "p99 ms", "tput", "cpu-sl p50",
                    "cpu-sl p99"},
                   rows);
  std::printf("(short windows react faster but noisier; long windows smooth\n"
              " decisions at the cost of responsiveness)\n");
  return 0;
}
