// Section VII: Distributed Containers as a billing boundary. Meters the
// GridSearch serverless job under OpenWhisk alone and under OpenWhisk +
// Escra with a UsageAccountant, and prices both under reservation-based
// billing (pay for limits) and usage-based billing (pay for consumption).
// Escra's contribution in money terms: the reservation bill collapses
// toward the usage bill, because limits track usage.

#include <cstdio>

#include "cluster/cluster.h"
#include "core/accounting.h"
#include "core/escra.h"
#include "exp/report.h"
#include "net/network.h"
#include "serverless/apps.h"
#include "serverless/openwhisk.h"
#include "sim/rng.h"

using namespace escra;

namespace {

// Indicative on-demand rates.
constexpr double kPerCoreSecond = 0.04 / 3600.0;   // $0.04 per core-hour
constexpr double kPerGibSecond = 0.005 / 3600.0;   // $0.005 per GiB-hour

core::UsageBill run(bool with_escra) {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 4; ++i) {
    k8s.add_node(cluster::NodeConfig{.cores = 16.0,
                                     .memory_capacity = 64LL * memcg::kGiB});
  }

  serverless::OpenWhiskConfig ow_cfg;
  ow_cfg.max_pods = 115;
  std::unique_ptr<core::EscraSystem> escra;
  if (with_escra) {
    core::EscraConfig ec;
    ec.upsilon = 20.0;
    escra = std::make_unique<core::EscraSystem>(
        simulation, network, k8s,
        ow_cfg.pod_cpu * static_cast<double>(ow_cfg.max_pods),
        static_cast<memcg::Bytes>(ow_cfg.pod_mem) * ow_cfg.max_pods, ec);
    escra->watch();
    escra->start();
  }
  core::UsageAccountant accountant(simulation);
  // Meter every pod the invoker creates under one tenant.
  k8s.set_container_observer([&](cluster::Container& c, cluster::Node& node) {
    if (escra) escra->controller().register_container(c, node, 0.0, 0);
    accountant.track(c, "gridsearch");
  });

  serverless::OpenWhisk openwhisk(simulation, k8s, ow_cfg, sim::Rng(31));
  openwhisk.set_pod_reap_hook([&](cluster::Container& c) {
    accountant.untrack(c.id());
    if (escra) escra->release(c);
  });
  openwhisk.register_action(serverless::make_grid_task_action());

  bool finished = false;
  serverless::GridSearchJob job(simulation, openwhisk, {.total_tasks = 960},
                                [&](sim::Duration) { finished = true; });
  job.start();
  while (!finished && simulation.now() < sim::seconds(3600)) {
    simulation.run_until(simulation.now() + sim::seconds(5));
  }
  return accountant.bill("gridsearch");
}

std::string dollars(double x) { return "$" + exp::fmt(x, 4); }

}  // namespace

int main() {
  exp::print_section("GridSearch billed through the Distributed Container");
  const core::UsageBill ow = run(false);
  const core::UsageBill es = run(true);

  exp::print_table(
      {"config", "reserved core-s", "used core-s", "cpu util",
       "reservation bill", "usage bill"},
      {{"openwhisk", exp::fmt(ow.cpu_core_seconds_reserved, 0),
        exp::fmt(ow.cpu_core_seconds_used, 0),
        exp::fmt(100.0 * ow.cpu_utilization(), 0) + "%",
        dollars(ow.cost_reserved(kPerCoreSecond, kPerGibSecond)),
        dollars(ow.cost_used(kPerCoreSecond, kPerGibSecond))},
       {"escra-openwhisk", exp::fmt(es.cpu_core_seconds_reserved, 0),
        exp::fmt(es.cpu_core_seconds_used, 0),
        exp::fmt(100.0 * es.cpu_utilization(), 0) + "%",
        dollars(es.cost_reserved(kPerCoreSecond, kPerGibSecond)),
        dollars(es.cost_used(kPerCoreSecond, kPerGibSecond))}});

  const double saved =
      exp::pct_decrease(ow.cost_reserved(kPerCoreSecond, kPerGibSecond),
                        es.cost_reserved(kPerCoreSecond, kPerGibSecond));
  std::printf(
      "\nEscra cuts the reservation-billed cost by %.0f%% for identical work\n"
      "(Section VII: the Distributed Container as a billing/accounting unit\n"
      "— a provider can meter aggregate limits instead of invocations).\n",
      saved);
  return 0;
}
