// Fan-out bandwidth benchmark: event-driven allocation vs static limits.
//
// The scenario (workload::FanoutWorkload): one frontend fans each request
// out to 4 of 8 backend replicas spread over four 100 Mbps worker nodes and
// waits for all responses; one rotating "hot" backend answers with 8x
// larger responses. Both arms run the identical byte stream through the
// src/bw token-bucket shaper — only who sets the rate limits differs:
//
//   static  each container keeps a fixed equal split of its node's NIC
//           (the best placement-aware static policy: no telemetry, no
//           reallocation), so the hot backend throttles behind its share
//           while its cold neighbour's headroom idles;
//   escra   the full control loop (EscraSystem::enable_bandwidth): shaper
//           telemetry -> allocator bandwidth arm -> sequenced limit
//           updates, reclaiming idle rate and re-granting it to whoever is
//           saturating, sub-second, as the hot seat moves.
//
// Reported: p50/p99 full-request latency per arm, completion counts, and
// the deterministic event counts. The run asserts the paper-level claim
// (escra p99 < static p99) and, with --check BASELINE.json, byte-exact
// determinism of both arms against the committed baseline. The escra arm
// runs under the InvariantChecker with the bandwidth rules armed.
//
//   fig_bw_fanout [--out FILE] [--check FILE] [--quick]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bw/shaper.h"
#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/fanout.h"

using namespace escra;

namespace {

// One frontend node with a fat uplink plus four constrained worker nodes.
constexpr double kFrontendNicBps = 125.0e6;  // 1 GbE
constexpr double kWorkerNicBps = 12.5e6;     // 100 Mbps
constexpr int kWorkerNodes = 4;
constexpr int kBackendsPerNode = 2;
constexpr double kGlobalBwBps = 50.0e6;
constexpr std::uint64_t kSeed = 0xfa40b7b4ULL;

struct ArmResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::uint64_t events = 0;  // determinism anchor
};

workload::FanoutWorkload::Config workload_config() {
  workload::FanoutWorkload::Config cfg;
  cfg.fanout = 4;
  cfg.request_bytes = 1'500;
  cfg.response_bytes = 32'000;
  cfg.hot_multiplier = 8.0;
  cfg.hot_rotate = sim::seconds(5);
  cfg.lambda = 30.0;
  return cfg;
}

// Builds the identical cluster + shaper for both arms. Returns container
// ids: [0] = frontend, rest = backends in placement order.
struct Topology {
  std::vector<cluster::Container*> members;
  std::vector<workload::FanoutWorkload::Backend> backends;
  cluster::Container* frontend = nullptr;
  net::EndpointId frontend_endpoint = 0;
};

Topology build(cluster::Cluster& k8s, bw::ClusterShaper& shaper) {
  Topology topo;
  cluster::Node& front_node =
      k8s.add_node(cluster::NodeConfig{.cores = 8.0, .nic_bps = kFrontendNicBps});
  shaper.add_node(front_node.id(), kFrontendNicBps);
  std::vector<cluster::Node*> workers;
  for (int n = 0; n < kWorkerNodes; ++n) {
    cluster::Node& node =
        k8s.add_node(cluster::NodeConfig{.cores = 8.0, .nic_bps = kWorkerNicBps});
    shaper.add_node(node.id(), kWorkerNicBps);
    workers.push_back(&node);
  }

  const auto spawn = [&](const std::string& name, cluster::Node* pin) {
    cluster::ContainerSpec spec;
    spec.name = name;
    spec.max_parallelism = 2.0;
    spec.base_memory = 32 * memcg::kMiB;
    return &k8s.create_container(spec, 1.0, 128 * memcg::kMiB, pin);
  };

  topo.frontend = spawn("frontend", &front_node);
  topo.frontend_endpoint = static_cast<net::EndpointId>(front_node.id());
  topo.members.push_back(topo.frontend);
  for (int n = 0; n < kWorkerNodes; ++n) {
    for (int b = 0; b < kBackendsPerNode; ++b) {
      cluster::Container* c =
          spawn("backend" + std::to_string(n) + "_" + std::to_string(b),
                workers[static_cast<std::size_t>(n)]);
      topo.members.push_back(c);
      topo.backends.push_back(
          {c->id(), static_cast<net::EndpointId>(
                        workers[static_cast<std::size_t>(n)]->id())});
    }
  }
  return topo;
}

ArmResult run_static(sim::Duration issue_window) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  bw::ClusterShaper shaper(sim);
  Topology topo = build(k8s, shaper);
  network.set_shaper(&shaper);

  // Placement-aware static policy: every container gets an equal share of
  // its own node's NIC, fixed for the whole run.
  shaper.attach(topo.frontend->id(), 0);
  shaper.set_container_rate(topo.frontend->id(), kFrontendNicBps);
  for (const auto& b : topo.backends) {
    shaper.attach(b.container, static_cast<std::uint32_t>(b.endpoint));
    shaper.set_container_rate(b.container, kWorkerNicBps / kBackendsPerNode);
  }

  workload::FanoutWorkload fw(sim, network, topo.frontend->id(),
                              topo.frontend_endpoint, topo.backends,
                              workload_config(), sim::Rng(kSeed));
  fw.run(sim::seconds(1), sim::seconds(1) + issue_window);
  sim.run_until(sim::seconds(1) + issue_window + sim::seconds(8));

  ArmResult r;
  r.issued = fw.issued();
  r.completed = fw.completed();
  r.p50_us = fw.latency().percentile(50.0);
  r.p99_us = fw.latency().percentile(99.0);
  r.events = sim.executed_events();
  return r;
}

ArmResult run_escra(sim::Duration issue_window, std::uint64_t* bw_grants,
                    std::string* checker_report) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  bw::ClusterShaper shaper(sim);
  Topology topo = build(k8s, shaper);
  network.set_shaper(&shaper);

  // A lower reclaim threshold than the datacenter default: on 100 Mbps
  // worker NICs a cold backend's idle headroom is a few MB/s, and that is
  // exactly the capacity the hot backend needs back.
  core::EscraConfig cfg;
  cfg.bw_gamma = 2.0e6;
  core::EscraSystem escra(sim, network, k8s, /*global_cpu_cores=*/16.0,
                          /*global_mem=*/8LL * memcg::kGiB, cfg);
  obs::Observer observer;
  escra.attach_observer(observer);
  network.attach_metrics(observer.metrics());
  shaper.set_observer(&observer);
  escra.enable_bandwidth(shaper, kGlobalBwBps);
  escra.manage(topo.members);
  escra.start();

  check::InvariantChecker checker(escra, network, observer);
  checker.attach_bw(shaper);

  workload::FanoutWorkload fw(sim, network, topo.frontend->id(),
                              topo.frontend_endpoint, topo.backends,
                              workload_config(), sim::Rng(kSeed));
  fw.run(sim::seconds(1), sim::seconds(1) + issue_window);
  sim.run_until(sim::seconds(1) + issue_window + sim::seconds(8));

  *bw_grants = observer.h.bw_grants->value();
  checker.check_now();
  *checker_report = checker.ok() ? "" : checker.report();

  ArmResult r;
  r.issued = fw.issued();
  r.completed = fw.completed();
  r.p50_us = fw.latency().percentile(50.0);
  r.p99_us = fw.latency().percentile(99.0);
  r.events = sim.executed_events();
  return r;
}

std::string to_json(const ArmResult& st, const ArmResult& es,
                    std::uint64_t bw_grants) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"fig_bw_fanout\",\n"
      "  \"static_p50_us\": %" PRId64 ",\n"
      "  \"static_p99_us\": %" PRId64 ",\n"
      "  \"static_completed\": %" PRIu64 ",\n"
      "  \"static_events\": %" PRIu64 ",\n"
      "  \"escra_p50_us\": %" PRId64 ",\n"
      "  \"escra_p99_us\": %" PRId64 ",\n"
      "  \"escra_completed\": %" PRIu64 ",\n"
      "  \"escra_events\": %" PRIu64 ",\n"
      "  \"escra_bw_grants\": %" PRIu64 ",\n"
      "  \"p99_speedup\": %.2f\n"
      "}\n",
      st.p50_us, st.p99_us, st.completed, st.events, es.p50_us, es.p99_us,
      es.completed, es.events, bw_grants,
      es.p99_us > 0 ? static_cast<double>(st.p99_us) /
                          static_cast<double>(es.p99_us)
                    : 0.0);
  return buf;
}

bool find_number(const std::string& json, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

int check_against(const std::string& path, const ArmResult& st,
                  const ArmResult& es) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fig_bw_fanout: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const struct {
    const char* key;
    double fresh;
  } fields[] = {
      {"static_p99_us", static_cast<double>(st.p99_us)},
      {"static_events", static_cast<double>(st.events)},
      {"escra_p99_us", static_cast<double>(es.p99_us)},
      {"escra_events", static_cast<double>(es.events)},
  };
  for (const auto& f : fields) {
    double base = 0.0;
    if (!find_number(json, f.key, &base)) {
      std::fprintf(stderr, "fig_bw_fanout: baseline %s missing %s\n",
                   path.c_str(), f.key);
      return 1;
    }
    // The whole scenario is deterministic: latency percentiles and event
    // counts must match the baseline bit for bit, not within a tolerance.
    if (base != f.fresh) {
      std::fprintf(stderr,
                   "fig_bw_fanout: DETERMINISM DRIFT — %s is %.0f, baseline "
                   "recorded %.0f\n",
                   f.key, f.fresh, base);
      return 1;
    }
  }
  std::printf("fig_bw_fanout: ok — matches baseline exactly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      out_path = next();
    } else if (flag == "--check") {
      check_path = next();
    } else if (flag == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: fig_bw_fanout [--out FILE] [--check FILE] "
                   "[--quick]\n");
      return 2;
    }
  }

  const sim::Duration issue_window =
      quick ? sim::seconds(12) : sim::seconds(30);
  const ArmResult st = run_static(issue_window);
  std::uint64_t bw_grants = 0;
  std::string checker_report;
  const ArmResult es = run_escra(issue_window, &bw_grants, &checker_report);

  const std::string json = to_json(st, es, bw_grants);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }

  int rc = 0;
  if (!checker_report.empty()) {
    std::fprintf(stderr, "fig_bw_fanout: invariant violations in escra arm:\n%s",
                 checker_report.c_str());
    rc = 1;
  }
  if (es.completed != es.issued || st.completed != st.issued) {
    std::fprintf(stderr,
                 "fig_bw_fanout: incomplete requests (static %" PRIu64
                 "/%" PRIu64 ", escra %" PRIu64 "/%" PRIu64 ")\n",
                 st.completed, st.issued, es.completed, es.issued);
    rc = 1;
  }
  if (es.p99_us >= st.p99_us) {
    std::fprintf(stderr,
                 "fig_bw_fanout: event-driven allocation did not beat static "
                 "limits (escra p99 %" PRId64 " us >= static %" PRId64
                 " us)\n",
                 es.p99_us, st.p99_us);
    rc = 1;
  }
  if (rc == 0 && !check_path.empty() && !quick) {
    rc = check_against(check_path, st, es);
  }
  return rc;
}
