// Section VI-I: Escra microbenchmarks and overheads.
//   1. Network overhead: peak/mean control-plane bandwidth for the
//      32-container MediaMicroservice (paper: 12.06 Mbps peak at 32
//      containers, dominated by per-container CPU telemetry, scaling
//      linearly with container count).
//   2. Controller/Resource-Allocator capacity: real wall-clock cost of
//      processing one telemetry statistic end-to-end (ingest -> windowed
//      stats -> decision), converted into containers manageable per core at
//      a 100 ms report period (paper: 1,192 containers per core; 23,859 per
//      20-core node).
//   3. Stat-gap scaling: mean time between successive statistics from the
//      same container as the container count grows (paper: sublinear).

#include <chrono>
#include <cstdio>

#include "core/allocator.h"
#include "core/distributed_container.h"
#include "exp/microservice.h"
#include "exp/report.h"
#include "net/network.h"
#include "sim/rng.h"

using namespace escra;

namespace {

// Telemetry volume and bandwidth for an N-container application.
void network_overhead() {
  exp::print_section("Network overhead (Escra control plane)");
  std::vector<std::vector<std::string>> rows;
  for (const auto [bench_name, benchmark] :
       {std::pair{"hipster-shop(11)", app::Benchmark::kHipster},
        std::pair{"media(32)", app::Benchmark::kMedia},
        std::pair{"train-ticket(68)", app::Benchmark::kTrainTicket}}) {
    exp::MicroserviceConfig cfg;
    cfg.benchmark = benchmark;
    cfg.workload = workload::WorkloadKind::kBurst;
    cfg.policy = exp::PolicyKind::kEscra;
    cfg.duration = sim::seconds(60);
    const exp::RunResult r = exp::run_microservice(cfg);
    rows.push_back({bench_name, exp::fmt(r.peak_net_mbps, 3),
                    exp::fmt(r.mean_net_mbps, 3),
                    std::to_string(r.telemetry_msgs),
                    std::to_string(r.limit_updates)});
  }
  exp::print_table({"application", "peak Mbps", "mean Mbps", "telemetry msgs",
                    "limit updates"},
                   rows);
  std::printf(
      "(paper: 12.06 Mbps peak at 32 containers on its kernel-socket wire\n"
      " format; absolute numbers differ with framing, but overhead must\n"
      " scale ~linearly with container count, dominated by telemetry)\n");
}

// Wall-clock microbenchmark of the allocator's per-statistic decision cost.
void controller_capacity() {
  exp::print_section("Controller + Resource Allocator capacity");
  constexpr int kContainers = 1024;
  constexpr int kStatsPerContainer = 200;
  core::EscraConfig config;
  core::DistributedContainer app(4096.0, 1024LL * memcg::kGiB);
  core::ResourceAllocator alloc(config, app);
  for (int i = 0; i < kContainers; ++i) {
    alloc.register_container(static_cast<std::uint32_t>(i + 1), 1.0,
                             256 * memcg::kMiB);
  }
  sim::Rng rng(1);
  // Pre-generate a realistic stat mix: ~10% throttled, varied unused.
  std::vector<core::CpuStatsMsg> stats;
  stats.reserve(kContainers * kStatsPerContainer);
  for (int s = 0; s < kStatsPerContainer; ++s) {
    for (int i = 0; i < kContainers; ++i) {
      core::CpuStatsMsg m;
      m.cgroup = static_cast<std::uint32_t>(i + 1);
      m.quota = sim::milliseconds(100);
      m.throttled = rng.chance(0.1);
      m.unused = m.throttled
                     ? 0
                     : static_cast<sim::Duration>(rng.uniform(0.0, 100000.0));
      stats.push_back(m);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::size_t decisions = 0;
  for (const core::CpuStatsMsg& m : stats) {
    decisions += alloc.on_cpu_stats(m).has_value() ? 1 : 0;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const double ns_per_stat = static_cast<double>(elapsed) /
                             static_cast<double>(stats.size());
  // One stat per container per 100 ms period -> 10 stats/s/container.
  const double containers_per_core = 1e9 / ns_per_stat / 10.0;
  std::printf("  processed %zu stats (%zu decisions) in %.1f ms\n",
              stats.size(), decisions, static_cast<double>(elapsed) / 1e6);
  std::printf("  %.0f ns per statistic -> %.0f containers per core at a\n"
              "  100 ms report period; %.0f per 20-core node\n",
              ns_per_stat, containers_per_core, 20.0 * containers_per_core);
  std::printf("(paper: 1,192 containers/core, 23,859 per 20-core node —\n"
              " including gRPC and socket costs our model does not pay)\n");
}

// Mean gap between consecutive stats of one container as the fleet grows.
void stat_gap_scaling() {
  exp::print_section("Mean inter-statistic gap vs container count");
  std::vector<std::vector<std::string>> rows;
  for (const int n : {8, 32, 128, 512}) {
    // All containers report once per period; the controller serializes
    // processing, so the gap is period + queueing that grows sublinearly
    // while processing capacity holds.
    core::EscraConfig config;
    core::DistributedContainer app(4096.0, 1024LL * memcg::kGiB);
    core::ResourceAllocator alloc(config, app);
    for (int i = 0; i < n; ++i) {
      alloc.register_container(static_cast<std::uint32_t>(i + 1), 1.0,
                               256 * memcg::kMiB);
    }
    const auto start = std::chrono::steady_clock::now();
    constexpr int kRounds = 2000;
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < n; ++i) {
        core::CpuStatsMsg m;
        m.cgroup = static_cast<std::uint32_t>(i + 1);
        m.quota = sim::milliseconds(100);
        m.unused = 10000;
        alloc.on_cpu_stats(m);
      }
    }
    const auto elapsed_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Gap = report period + per-round processing backlog contribution.
    const double processing_per_round_us =
        static_cast<double>(elapsed_ns) / 1e3 / kRounds;
    rows.push_back({std::to_string(n),
                    exp::fmt(100000.0 + processing_per_round_us, 1),
                    exp::fmt(processing_per_round_us, 2)});
  }
  exp::print_table(
      {"containers", "mean stat gap (us)", "processing share (us)"}, rows);
  std::printf("(paper: the gap grows sublinearly with the container count)\n");
}

}  // namespace

int main() {
  network_overhead();
  controller_capacity();
  stat_gap_scaling();
  return 0;
}
