// Related-work comparison (Section II): the systems the paper positions
// Escra against — the Kubernetes Vertical Pod Autoscaler (restart-to-resize,
// once per minute), the Firm-style utilization multiplexer (no restarts but
// a coarse loop and a fixed budget), and Autopilot (recreated per §VI-A).
// Runs Teastore under a shifting workload and counts what each structural
// limitation costs.

#include <cstdio>

#include "exp/microservice.h"
#include "exp/report.h"

using namespace escra;

int main() {
  exp::print_section("VPA vs Firm vs Autopilot vs Escra (Teastore, Alibaba workload)");
  std::vector<std::vector<std::string>> rows;
  for (const auto policy : {exp::PolicyKind::kVpa, exp::PolicyKind::kFirm,
                            exp::PolicyKind::kAutopilot,
                            exp::PolicyKind::kEscra}) {
    exp::MicroserviceConfig cfg;
    cfg.benchmark = app::Benchmark::kTeastore;
    cfg.workload = workload::WorkloadKind::kAlibaba;
    cfg.policy = policy;
    cfg.duration = sim::seconds(120);  // room for several VPA cycles
    const exp::RunResult r = exp::run_microservice(cfg);
    rows.push_back({r.policy_name, exp::fmt(r.throughput_rps, 1),
                    exp::fmt(r.p999_latency_ms, 1),
                    exp::fmt(r.cpu_slack_cores.percentile(50), 2),
                    std::to_string(r.evictions), std::to_string(r.oom_kills),
                    std::to_string(r.failed)});
  }
  exp::print_table({"policy", "tput req/s", "p99.9 ms", "cpu-slack p50",
                    "pod restarts", "ooms", "failed reqs"},
                   rows);
  std::printf(
      "\nexpected shape (Section II): every VPA resize is a pod restart that\n"
      "drops requests; its once-per-minute cadence leaves limits stale\n"
      "between cycles. Escra resizes hundreds of times without a single\n"
      "restart.\n");
  return 0;
}
