// Figure 6: memory absolute-slack CDFs (MiB, log-scale x in the paper) for
// the same four highlighted pairs as Figure 5. Slack = per-container memory
// limit minus usage, sampled per second and pooled.

#include <cstdio>

#include "exp/report.h"
#include "grid.h"

using namespace escra;
using bench::grid_cell;

namespace {

void plot(const char* tag, app::Benchmark a, workload::WorkloadKind w) {
  std::printf("\n--- %s ---\n", tag);
  for (const auto p : {exp::PolicyKind::kEscra, exp::PolicyKind::kAutopilot,
                       exp::PolicyKind::kStatic}) {
    const exp::RunResult& r = grid_cell(a, w, p);
    exp::print_cdf(std::string("mem-slack-MiB ") + r.policy_name,
                   r.mem_slack_mib, 15);
    std::printf("   p50=%.1f p99=%.1f MiB\n", r.mem_slack_mib.percentile(50),
                r.mem_slack_mib.percentile(99));
  }
}

}  // namespace

int main() {
  // The four highlighted cells under all three policies, in parallel.
  bench::grid_prefetch_pairs(
      {{app::Benchmark::kTrainTicket, workload::WorkloadKind::kFixed},
       {app::Benchmark::kTeastore, workload::WorkloadKind::kAlibaba},
       {app::Benchmark::kHipster, workload::WorkloadKind::kExp},
       {app::Benchmark::kMedia, workload::WorkloadKind::kBurst}},
      {exp::PolicyKind::kEscra, exp::PolicyKind::kAutopilot,
       exp::PolicyKind::kStatic},
      /*jobs=*/0);
  exp::print_section("Figure 6: memory slack CDFs (limit - usage, MiB)");
  plot("(a) TrainTicket - Fixed", app::Benchmark::kTrainTicket,
       workload::WorkloadKind::kFixed);
  plot("(b) Teastore - Alibaba", app::Benchmark::kTeastore,
       workload::WorkloadKind::kAlibaba);
  plot("(c) HipsterShop - Exp", app::Benchmark::kHipster,
       workload::WorkloadKind::kExp);
  plot("(d) MediaMicroservice - Burst", app::Benchmark::kMedia,
       workload::WorkloadKind::kBurst);
  std::printf(
      "\nexpected shape (paper Fig. 6): Escra pinned near the reclamation\n"
      "margin delta (~50 MiB; e.g. 49 MiB for TrainTicket-Fixed) while\n"
      "static sits at hundreds of MiB; Autopilot in between.\n");
  return 0;
}
