// Recovery latency (MTTR) under control-plane faults — the measurement
// behind the fail-static claim: a dead Controller must not hurt running
// containers, and a restarted one must reconverge in well under a second.
//
// Four runs of the TeaStore graph (3 nodes, fixed 200 req/s, identical
// seeds):
//   baseline          no faults — the reference trajectory
//   controller-crash  Controller dies at 15 s, restarts at 20 s
//   partition         node 1 severed from the Controller for 15 s .. 18 s
//   agent-crash       node 1's Agent dies at 15 s, restarts at 18 s
//
// MTTR is measured from the decision trace, not by comparing instantaneous
// limit trajectories: the per-container limits oscillate by design (the
// kappa/upsilon loop hunts around demand), so two runs decorrelate in phase
// after any perturbation and instantaneous deltas never settle. What
// recovery actually means is that the control plane is serving the affected
// containers again, so:
//
//   MTTR = time from fault clearance until every affected container has
//          been reconciled (a kResync re-adoption or a kRpcApplied limit
//          update landing on its Agent after the clearance instant)
//
// with "affected" = every container for a Controller crash, the faulted
// node's containers otherwise. Two further checks close the loop:
//   - decisions resume: at least one allocator grant/shrink lands on an
//     affected container after clearance;
//   - the limits return to the normal operating envelope: the faulted
//     run's time-averaged aggregate CPU limit over the post-recovery tail
//     is within 25% of the never-faulted baseline's (identical seed and
//     workload, so the averages — unlike the instantaneous values — are
//     directly comparable).
// For the controller-crash run the fail-static guarantee is verified
// directly: while the Controller is down no managed container's memory
// limit drops below its crash-time value and no managed container is
// OOM-killed.
//
//   recovery_latency [--assert]
//
// With --assert the process exits non-zero unless every scenario passes
// (MTTR < 1 s, decisions resume, envelope matches, fail-static holds) —
// this is the mode CI runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/benchmarks.h"
#include "app/service_graph.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/load_generator.h"

using namespace escra;

namespace {

constexpr std::uint64_t kSeed = 7;
constexpr double kRateRps = 200.0;
constexpr sim::TimePoint kLoadStart = sim::seconds(2);
constexpr sim::TimePoint kLoadEnd = sim::seconds(38);
constexpr sim::TimePoint kRunEnd = sim::seconds(40);
constexpr sim::Duration kSampleInterval = sim::milliseconds(100);
constexpr sim::TimePoint kFaultStart = sim::seconds(15);
constexpr cluster::NodeId kFaultNode = 1;
constexpr sim::Duration kMttrTarget = sim::seconds(1);
// Post-recovery tail for the aggregate-limit envelope comparison.
constexpr sim::Duration kEnvelopeSettle = sim::seconds(2);
constexpr double kEnvelopeTol = 0.25;

enum class Scenario { kBaseline, kControllerCrash, kPartition, kAgentCrash };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kBaseline: return "baseline";
    case Scenario::kControllerCrash: return "controller-crash";
    case Scenario::kPartition: return "partition";
    case Scenario::kAgentCrash: return "agent-crash";
  }
  return "?";
}

// When the fault clears (restart / heal time) — recovery is measured from
// here.
sim::TimePoint fault_clear(Scenario s) {
  switch (s) {
    case Scenario::kControllerCrash: return kFaultStart + sim::seconds(5);
    case Scenario::kPartition:
    case Scenario::kAgentCrash: return kFaultStart + sim::seconds(3);
    case Scenario::kBaseline: break;
  }
  return kFaultStart;
}

struct RunResult {
  // Aggregate CPU limit (cores, all containers), sampled every
  // kSampleInterval from t=0.
  std::vector<double> agg_cpu;
  std::vector<sim::TimePoint> sample_times;
  std::uint64_t total_oom_kills = 0;

  // Per affected container: first post-clearance reconcile (kResync or
  // kRpcApplied). Missing entry = never reconciled.
  std::vector<std::uint32_t> affected;
  std::map<std::uint32_t, sim::TimePoint> first_reconcile;
  // First post-clearance allocator decision (grant/shrink) on an affected
  // container; 0 = none.
  sim::TimePoint first_decision = 0;

  // Controller-crash fail-static bookkeeping.
  std::uint64_t oom_kills_in_window = 0;
  bool mem_dropped_below_fail_static = false;

  std::uint64_t retransmits = 0;
  std::uint64_t resyncs = 0;
};

// Mean of the aggregate CPU limit over [from, to).
double mean_agg(const RunResult& r, sim::TimePoint from, sim::TimePoint to) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < r.sample_times.size(); ++i) {
    if (r.sample_times[i] < from || r.sample_times[i] >= to) continue;
    sum += r.agg_cpu[i];
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

RunResult run_scenario(Scenario scenario) {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 3; ++i) k8s.add_node({});

  sim::Rng root(kSeed);
  app::Application application(k8s, app::make_teastore(), root.fork(),
                               /*initial_cores=*/1.0,
                               /*initial_mem=*/512 * memcg::kMiB);
  core::EscraSystem escra(simulation, network, k8s, /*global_cpu=*/12.0,
                          /*global_mem=*/8 * memcg::kGiB);
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(application.containers());
  escra.start();

  fault::FaultInjector injector(simulation, network, escra);
  switch (scenario) {
    case Scenario::kBaseline:
      break;
    case Scenario::kControllerCrash:
      injector.inject_controller_crash(kFaultStart, sim::seconds(5));
      break;
    case Scenario::kPartition:
      injector.inject_partition(kFaultNode, kFaultStart, sim::seconds(3));
      break;
    case Scenario::kAgentCrash:
      injector.inject_agent_crash(kFaultNode, kFaultStart, sim::seconds(3));
      break;
  }

  workload::LoadGenerator loadgen(
      simulation, std::make_unique<workload::FixedArrivals>(kRateRps),
      [&application](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      });
  loadgen.run(kLoadStart, kLoadEnd);

  RunResult result;
  const auto& containers = application.containers();
  const sim::TimePoint clear = fault_clear(scenario);

  // Fail-static bookkeeping: freeze the memory limits the instant before
  // the Controller dies, then watch the whole downtime window.
  std::vector<memcg::Bytes> fail_static_mem;
  std::uint64_t kills_at_crash = 0;
  if (scenario == Scenario::kControllerCrash) {
    simulation.schedule_at(kFaultStart - 1, [&] {
      for (const cluster::Container* c : containers) {
        fail_static_mem.push_back(c->mem_cgroup().limit());
        kills_at_crash += c->oom_kill_count();
      }
    });
    simulation.schedule_at(clear - 1, [&] {
      std::uint64_t kills_now = 0;
      for (const cluster::Container* c : containers) {
        kills_now += c->oom_kill_count();
      }
      result.oom_kills_in_window = kills_now - kills_at_crash;
    });
  }

  simulation.schedule_every(0, kSampleInterval, [&] {
    result.sample_times.push_back(simulation.now());
    double agg = 0.0;
    for (std::size_t i = 0; i < containers.size(); ++i) {
      agg += containers[i]->cpu_cgroup().limit_cores();
      if (scenario == Scenario::kControllerCrash &&
          simulation.now() > kFaultStart && simulation.now() < clear &&
          i < fail_static_mem.size() &&
          containers[i]->mem_cgroup().limit() < fail_static_mem[i]) {
        result.mem_dropped_below_fail_static = true;
      }
    }
    result.agg_cpu.push_back(agg);
  });

  simulation.run_until(kRunEnd);

  for (const cluster::Container* c : containers) {
    result.total_oom_kills += c->oom_kill_count();
  }
  result.retransmits = escra.controller().retransmits();
  result.resyncs = escra.controller().resyncs();

  // Affected set: everything for a Controller crash, the faulted node's
  // containers otherwise.
  for (const cluster::Container* c : containers) {
    const cluster::Node* node = k8s.node_of(c->id());
    if (scenario == Scenario::kControllerCrash ||
        (node != nullptr && node->id() == kFaultNode)) {
      result.affected.push_back(c->id());
    }
  }

  // Scan the decision trace for the recovery signals.
  const obs::TraceBuffer& trace = observer.trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    if (ev.time < clear) continue;
    const bool is_affected =
        std::find(result.affected.begin(), result.affected.end(),
                  ev.container) != result.affected.end();
    if (!is_affected) continue;
    switch (ev.kind) {
      case obs::EventKind::kResync:
      case obs::EventKind::kRpcApplied:
        if (result.first_reconcile.find(ev.container) ==
            result.first_reconcile.end()) {
          result.first_reconcile[ev.container] = ev.time;
        }
        break;
      case obs::EventKind::kCpuGrant:
      case obs::EventKind::kCpuShrink:
        if (result.first_decision == 0) result.first_decision = ev.time;
        break;
      default:
        break;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool assert_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert") == 0) {
      assert_mode = true;
    } else {
      std::fprintf(stderr, "usage: recovery_latency [--assert]\n");
      return 2;
    }
  }

  std::printf("recovery_latency: TeaStore, 3 nodes, fixed %g req/s, "
              "fault at %gs\n\n",
              kRateRps, sim::to_seconds(kFaultStart));

  const RunResult baseline = run_scenario(Scenario::kBaseline);
  std::printf("%-18s oom-kills %llu (%zu samples)\n",
              scenario_name(Scenario::kBaseline),
              static_cast<unsigned long long>(baseline.total_oom_kills),
              baseline.sample_times.size());

  bool ok = baseline.total_oom_kills == 0;
  for (const Scenario scenario :
       {Scenario::kControllerCrash, Scenario::kPartition,
        Scenario::kAgentCrash}) {
    const RunResult r = run_scenario(scenario);
    const sim::TimePoint clear = fault_clear(scenario);

    // MTTR: slowest affected container's first post-clearance reconcile.
    sim::Duration mttr = -1;
    std::size_t reconciled = 0;
    for (const std::uint32_t id : r.affected) {
      const auto it = r.first_reconcile.find(id);
      if (it == r.first_reconcile.end()) continue;
      ++reconciled;
      mttr = std::max(mttr, it->second - clear);
    }
    const bool all_reconciled = reconciled == r.affected.size();
    const bool mttr_ok = all_reconciled && mttr >= 0 && mttr < kMttrTarget;
    const bool decisions_resumed = r.first_decision != 0;

    const double base_mean =
        mean_agg(baseline, clear + kEnvelopeSettle, kLoadEnd);
    const double fault_mean = mean_agg(r, clear + kEnvelopeSettle, kLoadEnd);
    const bool envelope_ok =
        base_mean > 0.0 &&
        std::abs(fault_mean - base_mean) <= kEnvelopeTol * base_mean;

    std::printf("%-18s MTTR %.3f s (%zu/%zu containers reconciled, clear at "
                "%gs)\n",
                scenario_name(scenario),
                mttr < 0 ? sim::to_seconds(kRunEnd - clear)
                         : sim::to_seconds(mttr),
                reconciled, r.affected.size(), sim::to_seconds(clear));
    std::printf("  decisions resumed %s%s; aggregate limit %.2f vs baseline "
                "%.2f cores (tol %.0f%%); %llu retransmits, %llu resyncs, "
                "oom-kills %llu\n",
                decisions_resumed ? "at " : "NEVER",
                decisions_resumed
                    ? (std::to_string(sim::to_seconds(r.first_decision)) + "s")
                          .c_str()
                    : "",
                fault_mean, base_mean, kEnvelopeTol * 100.0,
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.resyncs),
                static_cast<unsigned long long>(r.total_oom_kills));
    if (!mttr_ok) {
      std::printf("  FAIL: reconcile did not complete within %.1f s of "
                  "clearance\n",
                  sim::to_seconds(kMttrTarget));
      ok = false;
    }
    if (!decisions_resumed || !envelope_ok) {
      std::printf("  FAIL: post-recovery control loop degraded\n");
      ok = false;
    }
    if (scenario == Scenario::kControllerCrash) {
      const bool fail_static_held =
          !r.mem_dropped_below_fail_static && r.oom_kills_in_window == 0;
      std::printf("  fail-static: %s (%llu oom-kills during downtime, "
                  "limits %s)\n",
                  fail_static_held ? "held" : "VIOLATED",
                  static_cast<unsigned long long>(r.oom_kills_in_window),
                  r.mem_dropped_below_fail_static
                      ? "dropped below crash-time values"
                      : "never below crash-time values");
      if (!fail_static_held) ok = false;
    }
  }

  if (assert_mode && !ok) {
    std::fprintf(stderr, "\nrecovery_latency: FAILED\n");
    return 1;
  }
  std::printf("\nrecovery_latency: %s\n", ok ? "ok" : "degraded (see above)");
  return 0;
}
