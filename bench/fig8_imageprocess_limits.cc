// Figure 8: aggregate CPU and memory *limits* for ImageProcess, averaged per
// second over four test iterations, for OpenWhisk alone and OpenWhisk+Escra
// — plus the savings series (OpenWhisk limit minus Escra+OpenWhisk limit),
// i.e. subfigures (a)-(d) of the paper.

#include <cstdio>

#include "exp/report.h"
#include "exp/serverless.h"

using namespace escra;

int main() {
  exp::ImageProcessConfig ow_cfg;
  ow_cfg.mode = exp::ServerlessMode::kOpenWhisk;
  exp::ImageProcessConfig escra_cfg;
  escra_cfg.mode = exp::ServerlessMode::kEscra;

  const exp::ImageProcessResult ow = exp::run_image_process(ow_cfg);
  const exp::ImageProcessResult es = exp::run_image_process(escra_cfg);

  exp::print_section(
      "Figure 8: ImageProcess aggregate limits per second (4-iteration mean)");
  std::printf("%8s %12s %12s %12s %14s %14s %14s\n", "time_s", "ow_cpu",
              "escra_cpu", "cpu_saving", "ow_mem_MiB", "escra_mem_MiB",
              "mem_saving");
  const std::size_t n = std::min(ow.limits.size(), es.limits.size());
  for (std::size_t i = 0; i < n; i += 10) {  // one row per 10 s
    const auto& a = ow.limits[i];
    const auto& b = es.limits[i];
    std::printf("%8.0f %12.2f %12.2f %12.2f %14.1f %14.1f %14.1f\n",
                a.t_seconds, a.cpu_limit_cores, b.cpu_limit_cores,
                a.cpu_limit_cores - b.cpu_limit_cores, a.mem_limit_mib,
                b.mem_limit_mib, a.mem_limit_mib - b.mem_limit_mib);
  }

  std::printf("\nmeans over the run:\n");
  exp::print_table(
      {"config", "cpu limit (vCPU)", "mem limit (MiB)"},
      {{"openwhisk", exp::fmt(ow.mean_cpu_limit_cores, 2),
        exp::fmt(ow.mean_mem_limit_mib, 0)},
       {"escra-openwhisk", exp::fmt(es.mean_cpu_limit_cores, 2),
        exp::fmt(es.mean_mem_limit_mib, 0)},
       {"savings", exp::fmt(ow.mean_cpu_limit_cores - es.mean_cpu_limit_cores, 2),
        exp::fmt(ow.mean_mem_limit_mib - es.mean_mem_limit_mib, 0)}});
  std::printf(
      "(paper: OpenWhisk averages ~12 vCPU vs ~7 with Escra — ~5 vCPU saved —\n"
      " and ~1550 MiB of memory saved for identical workloads)\n");
  return 0;
}
