// escra_sim: command-line runner for YAML-defined applications.
//
//   escra_sim <app.yaml> [options]
//
//     --policy escra|static|autopilot|vpa|firm   (default escra)
//     --workload fixed|exp|burst|alibaba   arrival process   (default exp)
//     --trace FILE                         replay per-second req/s rates
//                                          from FILE (overrides --workload)
//     --rate R                             req/s for fixed/exp (default 300)
//     --duration S                         measured seconds  (default 60)
//     --seed N                             RNG seed          (default 42)
//     --nodes N                            worker nodes      (default 3)
//     --cores C                            cores per node    (default 20)
//     --csv PATH                           per-second aggregate usage/limit
//                                          time series as CSV
//     --metrics-out PATH                   control-plane metrics time series
//                                          (1 s snapshots) as CSV
//     --trace-out PATH                     decision trace (causal JSONL,
//                                          readable by escra-trace)
//     --rpc-loss R                         probabilistic control-plane
//                                          message loss (0 <= R < 1)
//     --partition NODE:START:DUR           sever node NODE from the
//                                          Controller at START s for DUR s
//                                          (repeatable)
//     --agent-crash NODE:T                 crash node NODE's Agent at T s;
//                                          it restarts after 2 s downtime
//                                          (repeatable)
//     --standbys N                         attach a warm-standby replicated
//                                          controller pool of N standbys
//     --leader-kill T                      kill the controller permanently
//                                          at T s — a standby takes over
//                                          (requires --standbys >= 1)
//     --rt                                 mixed criticality (escra policy
//                                          only): admit the first replica
//                                          of every service into the
//                                          real-time class at 5 s with a
//                                          20 ms / 100 ms reservation
//                                          (0.2-core floor). The summary
//                                          gains an rt line; with
//                                          --trace-out, escra-trace --rt
//                                          reads the deadline view
//     --shards N                           run the control plane as N
//                                          controller shards (escra policy
//                                          only): each service is deployed
//                                          as its own application, routed to
//                                          a shard by consistent hashing,
//                                          and the shards trade pool
//                                          headroom over the borrow
//                                          protocol. --trace-out then emits
//                                          the merged per-shard trace
//                                          (events stamped with their
//                                          owning shard; escra-trace
//                                          --shard ID filters it),
//                                          --standbys arms per-shard warm
//                                          standbys, and the fault flags
//                                          target shard 0's control plane
//
// Loads the application (services, edges, Distributed Container limits, and
// Escra tunables) from the YAML file, deploys it on a simulated cluster
// under the chosen policy, drives the chosen workload, and prints the
// summary an operator would want: throughput, latency percentiles, slack,
// OOM/rescue counts, and (for escra) control-plane traffic. Baseline
// policies run through the experiment harness, which profiles the
// application first the way an operator would.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <optional>
#include <string>
#include <vector>

#include "app/service_graph.h"
#include "cfs/rt.h"
#include "cluster/cluster.h"
#include "config/app_config.h"
#include "core/escra.h"
#include "exp/microservice.h"
#include "fault/fault_injector.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/sharded_control_plane.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "workload/load_generator.h"

using namespace escra;

namespace {

// --partition NODE:START:DUR — node index, start (s), duration (s).
struct PartitionSpec {
  std::uint32_t node = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
};

// --agent-crash NODE:T — node index, crash time (s). The Agent restarts
// after kAgentCrashDowntime; the Controller notices the new incarnation
// through heartbeats and resyncs.
struct AgentCrashSpec {
  std::uint32_t node = 0;
  double time_s = 0.0;
};

constexpr sim::Duration kAgentCrashDowntime = sim::seconds(2);

struct Options {
  std::string config_path;
  std::string policy = "escra";  // escra|static|autopilot|vpa|firm
  std::string workload = "exp";
  std::string trace_path;  // --trace: replay per-second rates from a file
  double rate = 300.0;
  double duration_s = 60.0;
  std::uint64_t seed = 42;
  int nodes = 3;
  double cores = 20.0;
  std::string csv_path;
  std::string metrics_path;  // --metrics-out: obs registry CSV time series
  std::string trace_path_out;  // --trace-out: decision trace JSONL
  double rpc_loss = 0.0;  // --rpc-loss: uniform control-plane message loss
  std::vector<PartitionSpec> partitions;
  std::vector<AgentCrashSpec> agent_crashes;
  int standbys = 0;           // --standbys: warm-standby controller pool size
  double leader_kill_s = -1.0;  // --leader-kill: permanent kill time (s)
  int shards = 0;             // --shards: sharded control plane (0 = single)
  bool rt = false;            // --rt: admit one RT replica per service

  bool has_faults() const {
    return rpc_loss > 0.0 || !partitions.empty() || !agent_crashes.empty() ||
           leader_kill_s >= 0.0;
  }
};

void usage() {
  std::fprintf(stderr,
               "usage: escra_sim <app.yaml> [--workload fixed|exp|burst|"
               "alibaba]\n"
               "                 [--policy escra|static|autopilot|vpa|firm]\n"
               "                 [--rate R] [--duration S] [--seed N]\n"
               "                 [--nodes N] [--cores C] [--csv PATH]\n"
               "                 [--metrics-out PATH] [--trace-out PATH]\n"
               "                 [--rpc-loss R] [--partition NODE:START:DUR]\n"
               "                 [--agent-crash NODE:T] [--standbys N]\n"
               "                 [--leader-kill T] [--shards N] [--rt]\n"
               "(--rate, --csv, --metrics-out, --trace-out and the fault "
               "flags apply to the default escra policy run only;\n"
               " --partition/--agent-crash are repeatable, times in seconds; "
               "a crashed agent restarts after 2 s)\n");
}

// std::stod/std::stoull accept trailing garbage ("12abc" parses as 12), so
// flag values are only accepted when the whole token converts.
double parse_double(const std::string& flag, const char* text) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || text[consumed] != '\0') {
    throw std::runtime_error(flag + " expects a number, got '" +
                             std::string(text) + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& flag, const char* text) {
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || text[consumed] != '\0' || text[0] == '-') {
    throw std::runtime_error(flag + " expects a non-negative integer, got '" +
                             std::string(text) + "'");
  }
  return value;
}

// Splits a colon-separated fault spec into exactly `expected` fields, each
// validated as a full-token number like every other numeric flag.
std::vector<std::string> split_spec(const std::string& flag, const char* text,
                                    std::size_t expected) {
  std::vector<std::string> fields;
  std::string token(text);
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = token.find(':', pos);
    if (colon == std::string::npos) {
      fields.push_back(token.substr(pos));
      break;
    }
    fields.push_back(token.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (fields.size() != expected) {
    throw std::runtime_error(flag + " expects " + std::to_string(expected) +
                             " colon-separated fields, got '" + token + "'");
  }
  return fields;
}

PartitionSpec parse_partition(const std::string& flag, const char* text) {
  const auto f = split_spec(flag, text, 3);
  PartitionSpec spec;
  spec.node = static_cast<std::uint32_t>(parse_u64(flag, f[0].c_str()));
  spec.start_s = parse_double(flag, f[1].c_str());
  spec.duration_s = parse_double(flag, f[2].c_str());
  if (spec.start_s < 0.0 || spec.duration_s <= 0.0) {
    throw std::runtime_error(flag + " expects START >= 0 and DUR > 0, got '" +
                             std::string(text) + "'");
  }
  return spec;
}

AgentCrashSpec parse_agent_crash(const std::string& flag, const char* text) {
  const auto f = split_spec(flag, text, 2);
  AgentCrashSpec spec;
  spec.node = static_cast<std::uint32_t>(parse_u64(flag, f[0].c_str()));
  spec.time_s = parse_double(flag, f[1].c_str());
  if (spec.time_s < 0.0) {
    throw std::runtime_error(flag + " expects T >= 0, got '" +
                             std::string(text) + "'");
  }
  return spec;
}

std::optional<Options> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options opts;
  opts.config_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--trace") {
      opts.trace_path = next();
    } else if (flag == "--policy") {
      opts.policy = next();
    } else if (flag == "--workload") {
      opts.workload = next();
    } else if (flag == "--rate") {
      opts.rate = parse_double(flag, next());
    } else if (flag == "--duration") {
      opts.duration_s = parse_double(flag, next());
    } else if (flag == "--seed") {
      opts.seed = parse_u64(flag, next());
    } else if (flag == "--nodes") {
      opts.nodes = static_cast<int>(parse_u64(flag, next()));
    } else if (flag == "--cores") {
      opts.cores = parse_double(flag, next());
    } else if (flag == "--csv") {
      opts.csv_path = next();
    } else if (flag == "--metrics-out") {
      opts.metrics_path = next();
    } else if (flag == "--trace-out") {
      opts.trace_path_out = next();
    } else if (flag == "--rpc-loss") {
      opts.rpc_loss = parse_double(flag, next());
      if (opts.rpc_loss < 0.0 || opts.rpc_loss >= 1.0) {
        throw std::runtime_error("--rpc-loss expects a rate in [0, 1)");
      }
    } else if (flag == "--partition") {
      opts.partitions.push_back(parse_partition(flag, next()));
    } else if (flag == "--agent-crash") {
      opts.agent_crashes.push_back(parse_agent_crash(flag, next()));
    } else if (flag == "--standbys") {
      opts.standbys = static_cast<int>(parse_u64(flag, next()));
    } else if (flag == "--leader-kill") {
      opts.leader_kill_s = parse_double(flag, next());
      if (opts.leader_kill_s < 0.0) {
        throw std::runtime_error("--leader-kill expects T >= 0");
      }
    } else if (flag == "--shards") {
      opts.shards = static_cast<int>(parse_u64(flag, next()));
      if (opts.shards < 1) {
        throw std::runtime_error("--shards expects N >= 1");
      }
    } else if (flag == "--rt") {
      opts.rt = true;
    } else {
      throw std::runtime_error("unknown flag " + flag);
    }
  }
  return opts;
}

std::unique_ptr<workload::ArrivalProcess> make_arrivals(const Options& opts,
                                                        sim::Rng rng,
                                                        std::size_t seconds) {
  if (!opts.trace_path.empty()) {
    return std::make_unique<workload::TraceArrivals>(
        workload::load_rate_trace(opts.trace_path), rng);
  }
  if (opts.workload == "fixed") {
    return std::make_unique<workload::FixedArrivals>(opts.rate);
  }
  if (opts.workload == "exp") {
    return std::make_unique<workload::ExpArrivals>(opts.rate, rng);
  }
  if (opts.workload == "burst") {
    return std::make_unique<workload::BurstArrivals>(
        workload::BurstArrivals::Params{}, rng);
  }
  if (opts.workload == "alibaba") {
    sim::Rng trace_rng = rng.fork();
    return std::make_unique<workload::TraceArrivals>(
        workload::make_alibaba_rates(seconds, trace_rng), rng);
  }
  throw std::runtime_error("unknown workload '" + opts.workload + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    const auto parsed = parse_args(argc, argv);
    if (!parsed.has_value()) {
      usage();
      return 2;
    }
    opts = *parsed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }

  config::AppConfig app_config;
  try {
    app_config = config::load_app_config_file(opts.config_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading %s: %s\n", opts.config_path.c_str(),
                 e.what());
    return 1;
  }

  std::printf("application: %s (%zu services, %zu containers)\n",
              app_config.name.c_str(), app_config.graph.services.size(),
              app_config.graph.total_containers());
  std::printf("limits: %.1f cores, %lld MiB; workload: %s; policy: %s; "
              "duration: %.0fs\n",
              app_config.global_cpu_cores,
              static_cast<long long>(app_config.global_mem / memcg::kMiB),
              opts.workload.c_str(), opts.policy.c_str(), opts.duration_s);

  if (opts.policy != "escra") {
    if (opts.has_faults() || opts.standbys > 0 || opts.shards > 0 ||
        opts.rt) {
      std::fprintf(stderr,
                   "error: --rpc-loss/--partition/--agent-crash/--standbys/"
                   "--leader-kill/--shards/--rt require the escra policy\n");
      return 2;
    }
    // Baseline runs go through the experiment harness (which profiles the
    // application first, like an operator would).
    exp::MicroserviceConfig cfg;
    cfg.custom_graph = std::make_shared<app::GraphSpec>(app_config.graph);
    cfg.escra = app_config.escra;
    cfg.worker_nodes = opts.nodes;
    cfg.node_cores = opts.cores;
    cfg.duration = sim::seconds_f(opts.duration_s);
    cfg.seed = opts.seed;
    if (opts.policy == "static") {
      cfg.policy = exp::PolicyKind::kStatic;
    } else if (opts.policy == "autopilot") {
      cfg.policy = exp::PolicyKind::kAutopilot;
    } else if (opts.policy == "vpa") {
      cfg.policy = exp::PolicyKind::kVpa;
    } else if (opts.policy == "firm") {
      cfg.policy = exp::PolicyKind::kFirm;
    } else {
      std::fprintf(stderr, "error: unknown policy '%s'\n", opts.policy.c_str());
      return 2;
    }
    if (opts.workload == "fixed") {
      cfg.workload = workload::WorkloadKind::kFixed;
    } else if (opts.workload == "exp") {
      cfg.workload = workload::WorkloadKind::kExp;
    } else if (opts.workload == "burst") {
      cfg.workload = workload::WorkloadKind::kBurst;
    } else if (opts.workload == "alibaba") {
      cfg.workload = workload::WorkloadKind::kAlibaba;
    } else {
      std::fprintf(stderr, "error: unknown workload '%s'\n",
                   opts.workload.c_str());
      return 2;
    }
    const exp::RunResult r = exp::run_microservice(cfg);
    std::printf("\nresults (%s):\n", r.policy_name.c_str());
    std::printf("  throughput     %.1f req/s (%llu ok, %llu failed)\n",
                r.throughput_rps,
                static_cast<unsigned long long>(r.succeeded),
                static_cast<unsigned long long>(r.failed));
    std::printf("  latency ms     p50 %.1f  p99 %.1f  p99.9 %.1f\n",
                r.p50_latency_ms, r.p99_latency_ms, r.p999_latency_ms);
    std::printf("  cpu slack      p50 %.2f  p99 %.2f cores\n",
                r.cpu_slack_cores.percentile(50),
                r.cpu_slack_cores.percentile(99));
    std::printf("  mem slack      p50 %.1f  p99 %.1f MiB\n",
                r.mem_slack_mib.percentile(50), r.mem_slack_mib.percentile(99));
    std::printf("  ooms %llu  evictions %llu\n",
                static_cast<unsigned long long>(r.oom_kills),
                static_cast<unsigned long long>(r.evictions));
    return 0;
  }

  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < opts.nodes; ++i) {
    k8s.add_node(cluster::NodeConfig{.cores = opts.cores});
  }

  sim::Rng root(opts.seed);
  app::Application application(k8s, app_config.graph, root.fork(),
                               /*initial_cores=*/1.0,
                               /*initial_mem=*/512 * memcg::kMiB);
  // Single controller (shards == 0) or a sharded control plane: exactly one
  // of the two is built. Per-shard observers are declared before the plane
  // (they must outlive it).
  std::vector<std::unique_ptr<obs::Observer>> shard_observers;
  std::optional<core::EscraSystem> escra_opt;
  std::optional<shard::ShardedControlPlane> plane;
  if (opts.shards > 0) {
    shard::ShardPlaneConfig pcfg;
    pcfg.shards = opts.shards;
    pcfg.escra = app_config.escra;
    plane.emplace(simulation, network, k8s, app_config.global_cpu_cores,
                  app_config.global_mem, pcfg);
  } else {
    escra_opt.emplace(simulation, network, k8s, app_config.global_cpu_cores,
                      app_config.global_mem, app_config.escra);
  }
  // Control-plane observability is opt-in: without the flags nothing is
  // attached and the run is hook-free. Sharded runs attach one observer per
  // shard (the merged-trace sources); the metrics snapshots and network
  // counters land on shard 0's registry.
  std::optional<obs::Observer> observer;
  if (!opts.metrics_path.empty() || !opts.trace_path_out.empty()) {
    if (plane.has_value()) {
      for (int s = 0; s < opts.shards; ++s) {
        shard_observers.push_back(std::make_unique<obs::Observer>());
        plane->attach_observer(s, *shard_observers.back());
      }
      network.attach_metrics(shard_observers.front()->metrics());
      shard_observers.front()->metrics().start_periodic_snapshots(simulation,
                                                                  sim::kSecond);
    } else {
      observer.emplace();
      escra_opt->attach_observer(*observer);
      network.attach_metrics(observer->metrics());
      observer->metrics().start_periodic_snapshots(simulation, sim::kSecond);
    }
  }

  if (opts.leader_kill_s >= 0.0 && opts.standbys < 1) {
    std::fprintf(stderr,
                 "error: --leader-kill requires --standbys >= 1 (nothing "
                 "would ever take the seat back)\n");
    return 2;
  }

  if (plane.has_value()) {
    // Each service is its own application: the router pins it to one shard,
    // so app-level aggregate limits never straddle shards.
    const auto& services = app_config.graph.services;
    for (std::size_t s = 0; s < services.size(); ++s) {
      plane->manage(services[s].name, application.service_containers(s));
    }
    plane->start();
    std::vector<int> apps_per_shard(static_cast<std::size_t>(opts.shards), 0);
    for (const auto& svc : services) {
      ++apps_per_shard[static_cast<std::size_t>(
          plane->shard_of_app(svc.name))];
    }
    std::printf("shards: %d controller shard(s); services per shard:",
                opts.shards);
    for (int n : apps_per_shard) std::printf(" %d", n);
    std::printf("\n");
  } else {
    escra_opt->manage(application.containers());
    escra_opt->start();
  }

  // Warm-standby replicated controller: constructed after manage() so the
  // bootstrap snapshot covers every registered container, destroyed before
  // the system (it detaches its replication hook). Sharded runs arm one
  // standby group per shard on disjoint endpoint bands.
  std::optional<ha::HaControlPlane> ha;
  if (opts.standbys > 0) {
    ha::HaConfig ha_cfg;
    ha_cfg.standbys = opts.standbys;
    if (plane.has_value()) {
      plane->enable_ha(opts.standbys, ha_cfg);
      std::printf("ha: %d warm standby(ies) per shard, lease %.0f ms\n",
                  opts.standbys, sim::to_seconds(ha_cfg.lease_timeout) * 1e3);
    } else {
      ha.emplace(*escra_opt, network, ha_cfg);
      ha->start();
      std::printf("ha: %d warm standby(ies), lease %.0f ms\n", opts.standbys,
                  sim::to_seconds(ha_cfg.lease_timeout) * 1e3);
    }
  }

  // Mixed criticality (--rt): the first replica of every service runs in
  // the real-time class. Admissions land at 5 s — after deployment settles
  // but before load starts at 10 s — so a rejection here means the
  // reservation genuinely doesn't fit, not that best-effort load beat it
  // to the pool. One conservative spec for all: 20 ms runtime / 100 ms
  // period, a 0.2-core floor per reservation.
  std::vector<cluster::ContainerId> rt_ids;
  if (opts.rt) {
    cfs::RtSpec rt_spec;
    rt_spec.runtime = sim::milliseconds(20);
    rt_spec.deadline = sim::milliseconds(100);
    rt_spec.period = sim::milliseconds(100);
    for (std::size_t s = 0; s < app_config.graph.services.size(); ++s) {
      const auto members = application.service_containers(s);
      if (!members.empty()) rt_ids.push_back(members.front()->id());
    }
    simulation.schedule_at(sim::seconds(5), [&, rt_spec] {
      for (const cluster::ContainerId id : rt_ids) {
        if (plane.has_value()) {
          plane->admit_rt(id, rt_spec);
        } else {
          escra_opt->controller().admit_rt(id, rt_spec);
        }
      }
    });
    std::printf("rt: admitting %zu reservation(s) at 5 s "
                "(20 ms runtime / 100 ms period, 0.2-core floor each)\n",
                rt_ids.size());
  }

  // Scripted fault injection (escra policy only). The fault RNG is forked
  // from the run seed so faulted runs replay bit-for-bit.
  std::optional<fault::FaultInjector> injector;
  if (opts.has_faults()) {
    for (const auto& p : opts.partitions) {
      if (p.node >= static_cast<std::uint32_t>(opts.nodes)) {
        std::fprintf(stderr, "error: --partition node %u out of range (%d nodes)\n",
                     p.node, opts.nodes);
        return 2;
      }
    }
    for (const auto& c : opts.agent_crashes) {
      if (c.node >= static_cast<std::uint32_t>(opts.nodes)) {
        std::fprintf(stderr,
                     "error: --agent-crash node %u out of range (%d nodes)\n",
                     c.node, opts.nodes);
        return 2;
      }
    }
    sim::Rng fault_net_rng(opts.seed ^ 0x5eedf417c0deULL);
    if (opts.rpc_loss > 0.0) {
      network.set_loss(opts.rpc_loss, fault_net_rng);  // installs the rng too
    } else {
      network.set_fault_rng(fault_net_rng);
    }
    injector.emplace(simulation, network,
                     plane.has_value() ? plane->shard(0) : *escra_opt);
    for (const auto& p : opts.partitions) {
      injector->inject_partition(p.node, sim::seconds_f(p.start_s),
                                 sim::seconds_f(p.duration_s));
    }
    for (const auto& c : opts.agent_crashes) {
      injector->inject_agent_crash(c.node, sim::seconds_f(c.time_s),
                                   kAgentCrashDowntime);
    }
    if (opts.leader_kill_s >= 0.0) {
      injector->inject_leader_kill(sim::seconds_f(opts.leader_kill_s));
    }
    std::printf("faults: rpc-loss %.2f, %zu partition(s), %zu agent crash(es)"
                "%s\n",
                opts.rpc_loss, opts.partitions.size(),
                opts.agent_crashes.size(),
                opts.leader_kill_s >= 0.0 ? ", 1 leader kill" : "");
  }

  const sim::TimePoint load_start = sim::seconds(10);  // startup burn first
  const sim::TimePoint load_end = load_start + sim::seconds_f(opts.duration_s);
  workload::LoadGenerator loadgen(
      simulation,
      make_arrivals(opts, root.fork(),
                    static_cast<std::size_t>(sim::to_seconds(load_end)) + 1),
      [&application](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      });
  loadgen.run(load_start, load_end);

  std::ofstream csv;
  if (!opts.csv_path.empty()) {
    csv.open(opts.csv_path);
    if (!csv) {
      std::fprintf(stderr, "error: cannot write %s\n", opts.csv_path.c_str());
      return 1;
    }
    csv << "time_s,cpu_used_cores,cpu_limit_cores,mem_used_mib,mem_limit_mib\n";
  }

  sim::SampleSet cpu_slack, mem_slack_mib;
  std::vector<sim::Duration> prev(application.containers().size(), 0);
  simulation.schedule_every(sim::kSecond, sim::kSecond, [&] {
    double used = 0.0, limit = 0.0;
    memcg::Bytes mem_used = 0, mem_limit = 0;
    const auto& containers = application.containers();
    for (std::size_t i = 0; i < containers.size(); ++i) {
      const auto consumed = containers[i]->cpu_cgroup().total_consumed();
      const double u = static_cast<double>(consumed - prev[i]) / 1e6;
      prev[i] = consumed;
      used += u;
      limit += containers[i]->cpu_cgroup().limit_cores();
      mem_used += containers[i]->mem_cgroup().usage();
      mem_limit += containers[i]->mem_cgroup().limit();
      if (simulation.now() > load_start) {
        cpu_slack.add(containers[i]->cpu_cgroup().limit_cores() - u);
        mem_slack_mib.add(
            static_cast<double>(containers[i]->mem_cgroup().slack()) /
            static_cast<double>(memcg::kMiB));
      }
    }
    if (csv.is_open()) {
      csv << sim::to_seconds(simulation.now()) << ',' << used << ',' << limit
          << ',' << mem_used / memcg::kMiB << ',' << mem_limit / memcg::kMiB
          << '\n';
    }
  });

  simulation.run_until(load_end + sim::seconds(5));

  const sim::Histogram& lat = loadgen.latency();
  std::printf("\nresults:\n");
  std::printf("  throughput     %.1f req/s (%llu ok, %llu failed)\n",
              loadgen.throughput_rps(),
              static_cast<unsigned long long>(loadgen.succeeded()),
              static_cast<unsigned long long>(loadgen.failed()));
  std::printf("  latency ms     p50 %.1f  p99 %.1f  p99.9 %.1f\n",
              static_cast<double>(lat.percentile(50)) / 1000.0,
              static_cast<double>(lat.percentile(99)) / 1000.0,
              static_cast<double>(lat.percentile(99.9)) / 1000.0);
  std::printf("  cpu slack      p50 %.2f  p99 %.2f cores\n",
              cpu_slack.percentile(50), cpu_slack.percentile(99));
  std::printf("  mem slack      p50 %.1f  p99 %.1f MiB\n",
              mem_slack_mib.percentile(50), mem_slack_mib.percentile(99));
  std::uint64_t ctrl_stats = 0, ctrl_updates = 0, ctrl_ooms = 0,
                ctrl_rescues = 0, ctrl_retransmits = 0, ctrl_resyncs = 0;
  const auto sum_controller = [&](const core::Controller& c) {
    ctrl_stats += c.stats_received();
    ctrl_updates += c.limit_updates_sent();
    ctrl_ooms += c.oom_events();
    ctrl_rescues += c.oom_rescues();
    ctrl_retransmits += c.retransmits();
    ctrl_resyncs += c.resyncs();
  };
  if (plane.has_value()) {
    for (int s = 0; s < opts.shards; ++s) {
      sum_controller(plane->shard(s).controller());
    }
  } else {
    sum_controller(escra_opt->controller());
  }
  std::printf("  controller     %llu stats, %llu limit updates, "
              "%llu oom events, %llu rescues\n",
              static_cast<unsigned long long>(ctrl_stats),
              static_cast<unsigned long long>(ctrl_updates),
              static_cast<unsigned long long>(ctrl_ooms),
              static_cast<unsigned long long>(ctrl_rescues));
  if (opts.rt) {
    std::uint64_t rt_admitted = 0, rt_rejected = 0, rt_misses = 0;
    double rt_reserved = 0.0;
    const auto sum_rt = [&](const core::Controller& c) {
      rt_admitted += c.rt_admissions();
      rt_rejected += c.rt_rejections();
      rt_misses += c.deadline_misses();
      rt_reserved += c.rt_reserved_cores();
    };
    if (plane.has_value()) {
      for (int s = 0; s < opts.shards; ++s) {
        sum_rt(plane->shard(s).controller());
      }
    } else {
      sum_rt(escra_opt->controller());
    }
    std::printf("  rt             %llu admitted (%.1f cores reserved), "
                "%llu rejected, %llu deadline miss(es)\n",
                static_cast<unsigned long long>(rt_admitted), rt_reserved,
                static_cast<unsigned long long>(rt_rejected),
                static_cast<unsigned long long>(rt_misses));
  }
  if (plane.has_value()) {
    std::printf("  shards         %llu advert(s), %llu borrow(s) requested, "
                "%llu granted, %llu returned, %llu retransmit(s), "
                "%llu pool resize(s)\n",
                static_cast<unsigned long long>(plane->adverts_sent()),
                static_cast<unsigned long long>(plane->borrows_requested()),
                static_cast<unsigned long long>(plane->borrows_granted()),
                static_cast<unsigned long long>(plane->borrows_returned()),
                static_cast<unsigned long long>(plane->borrow_retransmits()),
                static_cast<unsigned long long>(plane->pool_resizes()));
  }
  std::printf("  network        peak %.2f Mbps, mean %.2f Mbps\n",
              network.peak_mbps(), network.mean_mbps());
  if (injector.has_value()) {
    std::printf("  recovery       %llu faults injected, %llu cleared, "
                "%llu retransmits, %llu resyncs\n",
                static_cast<unsigned long long>(injector->injected()),
                static_cast<unsigned long long>(injector->cleared()),
                static_cast<unsigned long long>(ctrl_retransmits),
                static_cast<unsigned long long>(ctrl_resyncs));
  }
  if (ha.has_value()) {
    std::printf("  ha             epoch %llu, %llu failover(s), "
                "%llu WAL appends, %d standby(ies) warm\n",
                static_cast<unsigned long long>(ha->epoch()),
                static_cast<unsigned long long>(ha->failovers()),
                static_cast<unsigned long long>(ha->wal_appends()),
                ha->standby_count());
  } else if (plane.has_value() && plane->ha_enabled()) {
    std::uint64_t failovers = 0, wal_appends = 0, max_epoch = 0;
    int standbys_warm = 0;
    for (int s = 0; s < opts.shards; ++s) {
      failovers += plane->ha(s).failovers();
      wal_appends += plane->ha(s).wal_appends();
      max_epoch = std::max<std::uint64_t>(max_epoch, plane->ha(s).epoch());
      standbys_warm += plane->ha(s).standby_count();
    }
    std::printf("  ha             max epoch %llu, %llu failover(s), "
                "%llu WAL appends, %d standby(ies) warm across shards\n",
                static_cast<unsigned long long>(max_epoch),
                static_cast<unsigned long long>(failovers),
                static_cast<unsigned long long>(wal_appends), standbys_warm);
  }
  if (!opts.csv_path.empty()) {
    std::printf("  time series    %s\n", opts.csv_path.c_str());
  }
  if (observer.has_value()) {
    std::printf("\ncontrol-loop latency (%llu loops):\n%s",
                static_cast<unsigned long long>(
                    observer->profiler().loops_completed()),
                observer->profiler().table().c_str());
    if (!opts.metrics_path.empty()) {
      std::ofstream out(opts.metrics_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opts.metrics_path.c_str());
        return 1;
      }
      observer->metrics().export_csv(out, simulation.now());
      std::printf("  metrics        %s\n", opts.metrics_path.c_str());
    }
    if (!opts.trace_path_out.empty()) {
      std::ofstream out(opts.trace_path_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opts.trace_path_out.c_str());
        return 1;
      }
      observer->trace().export_jsonl(out);
      std::printf("  trace          %s (%llu events, %llu evicted)\n",
                  opts.trace_path_out.c_str(),
                  static_cast<unsigned long long>(observer->trace().recorded()),
                  static_cast<unsigned long long>(observer->trace().evicted()));
    }
  } else if (!shard_observers.empty()) {
    if (!opts.metrics_path.empty()) {
      // Control-plane metrics registries are per shard; the CSV carries
      // shard 0's (which also holds the global network counters).
      std::ofstream out(opts.metrics_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opts.metrics_path.c_str());
        return 1;
      }
      shard_observers.front()->metrics().export_csv(out, simulation.now());
      std::printf("  metrics        %s (shard 0)\n", opts.metrics_path.c_str());
    }
    if (!opts.trace_path_out.empty()) {
      std::ofstream out(opts.trace_path_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opts.trace_path_out.c_str());
        return 1;
      }
      plane->export_merged_trace(out);
      std::uint64_t recorded = 0, evicted = 0;
      for (const auto& obs : shard_observers) {
        recorded += obs->trace().recorded();
        evicted += obs->trace().evicted();
      }
      std::printf("  trace          %s (%llu events, %llu evicted, "
                  "%d shards merged)\n",
                  opts.trace_path_out.c_str(),
                  static_cast<unsigned long long>(recorded),
                  static_cast<unsigned long long>(evicted), opts.shards);
    }
  }
  return 0;
}
