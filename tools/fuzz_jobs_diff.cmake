# Byte-identical --jobs guarantee, asserted by diffing raw stdout.
#
# Runs escra-fuzz twice with identical arguments — --jobs 1 and --jobs 8 —
# and fails unless both the exit codes and the captured stdout match
# byte-for-byte. Invoked via `cmake -DFUZZ=<binary> [-DEXTRA=...] -P` from a
# ctest entry; EXTRA is a ;-list of additional flags (e.g. the fault
# profile), letting one script cover every overlay.
if(NOT DEFINED FUZZ)
  message(FATAL_ERROR "fuzz_jobs_diff: pass -DFUZZ=<path to escra-fuzz>")
endif()
set(BASE_ARGS --runs 25 --seed 42)
if(DEFINED EXTRA)
  list(APPEND BASE_ARGS ${EXTRA})
endif()

execute_process(COMMAND ${FUZZ} ${BASE_ARGS} --jobs 1
                OUTPUT_VARIABLE out_serial RESULT_VARIABLE rc_serial)
execute_process(COMMAND ${FUZZ} ${BASE_ARGS} --jobs 8
                OUTPUT_VARIABLE out_parallel RESULT_VARIABLE rc_parallel)

if(NOT rc_serial EQUAL 0)
  message(FATAL_ERROR "fuzz_jobs_diff: --jobs 1 run failed (rc ${rc_serial})")
endif()
if(NOT rc_parallel EQUAL 0)
  message(FATAL_ERROR "fuzz_jobs_diff: --jobs 8 run failed (rc ${rc_parallel})")
endif()
if(NOT out_serial STREQUAL out_parallel)
  message(FATAL_ERROR "fuzz_jobs_diff: stdout diverged between --jobs 1 and "
                      "--jobs 8\n--- jobs 1 ---\n${out_serial}\n"
                      "--- jobs 8 ---\n${out_parallel}")
endif()
message(STATUS "fuzz_jobs_diff: ${BASE_ARGS} — stdout byte-identical "
               "across --jobs 1 and --jobs 8")
