// escra-trace: query a decision trace exported by `escra-sim --trace-out`
// (or any TraceBuffer::export_jsonl file).
//
//   escra-trace <trace.jsonl>                 summary: events by kind,
//                                             containers, time range
//   escra-trace <trace.jsonl> --container ID  per-container decision
//                                             timeline, oldest first
//   escra-trace <trace.jsonl> --chain ID      causal chain ending at event
//                                             ID, root first, with the
//                                             per-hop and total latency
//
// The trace answers "why did container X get limit Y": a throttled CFS
// period opens a chain ThrottleObserved -> CpuGrant -> RpcIssued ->
// RpcApplied whose timestamps are the control loop's per-stage latency.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

using namespace escra;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: escra-trace <trace.jsonl> [--container ID | --chain "
               "EVENT_ID]\n");
}

// "cores" for CPU events, MiB for memory events — matches TraceEvent's
// "natural unit" convention.
void format_limits(const obs::TraceEvent& ev, char* buf, std::size_t len) {
  switch (ev.kind) {
    case obs::EventKind::kThrottleObserved:
    case obs::EventKind::kCpuGrant:
    case obs::EventKind::kCpuShrink:
    case obs::EventKind::kContainerRegistered:
    case obs::EventKind::kContainerKilled:
      std::snprintf(buf, len, "%.3f -> %.3f cores", ev.before, ev.after);
      break;
    case obs::EventKind::kMemGrantOnOom:
    case obs::EventKind::kReclaim:
      std::snprintf(buf, len, "%.1f -> %.1f MiB", ev.before / (1024.0 * 1024.0),
                    ev.after / (1024.0 * 1024.0));
      break;
    case obs::EventKind::kRpcIssued:
    case obs::EventKind::kRpcApplied:
      std::snprintf(buf, len, "limit %.3f", ev.after);
      break;
  }
}

void print_event(const obs::TraceEvent& ev) {
  char limits[64];
  format_limits(ev, limits, sizeof limits);
  std::printf("  #%-6llu %12.6fs  %-20s c%-4u n%-3u %-26s cause=#%llu\n",
              static_cast<unsigned long long>(ev.id),
              sim::to_seconds(ev.time), obs::event_kind_name(ev.kind),
              ev.container, ev.node, limits,
              static_cast<unsigned long long>(ev.cause));
}

int run_summary(const obs::TraceBuffer& trace) {
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::uint32_t, std::uint64_t> by_container;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    ++by_kind[obs::event_kind_name(ev.kind)];
    if (ev.container != 0) ++by_container[ev.container];
  }
  if (trace.size() == 0) {
    std::printf("empty trace\n");
    return 0;
  }
  std::printf("%zu events (%llu recorded, %llu evicted), %12.6fs .. %.6fs\n",
              trace.size(),
              static_cast<unsigned long long>(trace.recorded()),
              static_cast<unsigned long long>(trace.evicted()),
              sim::to_seconds(trace.at(0).time),
              sim::to_seconds(trace.at(trace.size() - 1).time));
  std::printf("\nby kind:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-22s %8llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nby container (%zu):\n", by_container.size());
  for (const auto& [container, count] : by_container) {
    std::printf("  c%-6u %8llu\n", container,
                static_cast<unsigned long long>(count));
  }
  return 0;
}

int run_container(const obs::TraceBuffer& trace, std::uint32_t container) {
  const auto events = trace.for_container(container);
  if (events.empty()) {
    std::printf("no events for container %u\n", container);
    return 1;
  }
  std::printf("container %u: %zu events\n", container, events.size());
  for (const obs::TraceEvent& ev : events) print_event(ev);
  return 0;
}

int run_chain(const obs::TraceBuffer& trace, obs::EventId id) {
  if (trace.find(id) == nullptr) {
    std::fprintf(stderr, "event #%llu not in trace (evicted or never "
                 "recorded)\n",
                 static_cast<unsigned long long>(id));
    return 1;
  }
  const auto chain = trace.chain(id);
  std::printf("causal chain for #%llu (%zu hops, root first):\n",
              static_cast<unsigned long long>(id), chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    print_event(chain[i]);
    if (i + 1 < chain.size()) {
      std::printf("           |  +%.3f ms\n",
                  static_cast<double>(chain[i + 1].time - chain[i].time) /
                      1000.0);
    }
  }
  if (chain.size() > 1) {
    std::printf("end-to-end: %.3f ms\n",
                static_cast<double>(chain.back().time - chain.front().time) /
                    1000.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 1;
  }
  obs::TraceBuffer trace(1);  // replaced by import below
  try {
    trace = obs::TraceBuffer::import_jsonl(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error parsing %s: %s\n", argv[1], e.what());
    return 1;
  }

  if (argc == 2) return run_summary(trace);
  const std::string mode = argv[2];
  if (argc == 4 && (mode == "--container" || mode == "--chain")) {
    std::uint64_t id = 0;
    try {
      std::size_t pos = 0;
      id = std::stoull(argv[3], &pos);
      if (argv[3][pos] != '\0') throw std::invalid_argument("trailing chars");
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: %s expects a numeric id, got '%s'\n",
                   mode.c_str(), argv[3]);
      return 2;
    }
    if (mode == "--container") {
      return run_container(trace, static_cast<std::uint32_t>(id));
    }
    return run_chain(trace, id);
  }
  usage();
  return 2;
}
