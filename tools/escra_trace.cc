// escra-trace: query a decision trace exported by `escra-sim --trace-out`
// (or any TraceBuffer::export_jsonl file).
//
//   escra-trace <trace.jsonl>                 summary: events by kind,
//                                             containers, time range
//   escra-trace <trace.jsonl> --container ID  per-container decision
//                                             timeline, oldest first
//   escra-trace <trace.jsonl> --chain ID      causal chain ending at event
//                                             ID, root first, with the
//                                             per-hop and total latency
//   escra-trace <trace.jsonl> --tenant ID     credit-ledger view of one
//                                             container: balance trajectory,
//                                             charges/refunds, rejected
//                                             telemetry, throttle streaks,
//                                             and the windows spent in debt
//   escra-trace <trace.jsonl> --shard ID      one shard of a merged
//                                             multi-shard export: events by
//                                             kind, borrow traffic per peer,
//                                             pool-resize trajectory, and
//                                             the shard-protocol timeline
//   escra-trace <trace.jsonl> --rt            per-RT-container deadline
//                                             view: every admission with
//                                             its floor and (runtime,
//                                             period) contract, deadline
//                                             misses with the worst
//                                             shortfall, rejections, and
//                                             how each reservation ended
//
// The trace answers "why did container X get limit Y": a throttled CFS
// period opens a chain ThrottleObserved -> CpuGrant -> RpcIssued ->
// RpcApplied whose timestamps are the control loop's per-stage latency.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

using namespace escra;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: escra-trace <trace.jsonl> [--container ID | --chain "
               "EVENT_ID | --tenant ID | --shard ID | --rt]\n");
}

// Borrow-protocol events carry the resource flag in `before` (0 = CPU,
// 1 = memory, 2 = bandwidth) and the amount in `after`, in that resource's
// natural unit.
void format_resource_amount(double resource, double amount, char* buf,
                            std::size_t len) {
  if (resource == 0.0) {
    std::snprintf(buf, len, "%.3f cores", amount);
  } else if (resource == 1.0) {
    std::snprintf(buf, len, "%.1f MiB", amount / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, len, "%.1f MB/s", amount / 1e6);
  }
}

// "cores" for CPU events, MiB for memory events — matches TraceEvent's
// "natural unit" convention.
void format_limits(const obs::TraceEvent& ev, char* buf, std::size_t len) {
  buf[0] = '\0';
  switch (ev.kind) {
    case obs::EventKind::kThrottleObserved:
    case obs::EventKind::kCpuGrant:
    case obs::EventKind::kCpuShrink:
    case obs::EventKind::kContainerRegistered:
    case obs::EventKind::kContainerKilled:
      std::snprintf(buf, len, "%.3f -> %.3f cores", ev.before, ev.after);
      break;
    case obs::EventKind::kMemGrantOnOom:
    case obs::EventKind::kReclaim:
      std::snprintf(buf, len, "%.1f -> %.1f MiB", ev.before / (1024.0 * 1024.0),
                    ev.after / (1024.0 * 1024.0));
      break;
    case obs::EventKind::kRpcIssued:
    case obs::EventKind::kRpcApplied:
    case obs::EventKind::kRetransmit:
      // `before` is the resource flag (0 = CPU, 1 = memory); retransmits
      // carry the attempt count in `detail`.
      if (ev.kind == obs::EventKind::kRetransmit) {
        std::snprintf(buf, len, "limit %.3f (%s, attempt %lld)", ev.after,
                      ev.before == 0.0 ? "cpu" : "mem",
                      static_cast<long long>(ev.detail));
      } else {
        std::snprintf(buf, len, "limit %.3f (%s)", ev.after,
                      ev.before == 0.0 ? "cpu" : "mem");
      }
      break;
    case obs::EventKind::kDuplicateSuppressed:
      std::snprintf(buf, len, "kept %.3f, dup seq %lld", ev.before,
                    static_cast<long long>(ev.detail));
      break;
    case obs::EventKind::kResync:
      std::snprintf(buf, len, "%.3f -> %.3f cores", ev.before, ev.after);
      break;
    case obs::EventKind::kFailStatic:
      std::snprintf(buf, len, "%s", ev.detail != 0 ? "enter" : "exit");
      break;
    case obs::EventKind::kNodeDead:
    case obs::EventKind::kNodeAlive:
      break;  // no limit payload
    case obs::EventKind::kFaultInjected:
    case obs::EventKind::kFaultCleared:
      std::snprintf(buf, len, "rate %.2f, %.3fs window", ev.before, ev.after);
      break;
    case obs::EventKind::kLeaderElected:
      std::snprintf(buf, len, "epoch %.0f -> %lld, %.0f slots replayed",
                    ev.before, static_cast<long long>(ev.detail), ev.after);
      break;
    case obs::EventKind::kEpochFenced:
      std::snprintf(buf, len, "kept %.3f, fenced seq %lld", ev.before,
                    static_cast<long long>(ev.detail));
      break;
    case obs::EventKind::kWalLag:
      std::snprintf(buf, len, "lag %lld records",
                    static_cast<long long>(ev.detail));
      break;
    case obs::EventKind::kBwThrottled:
    case obs::EventKind::kBwSaturation:
      std::snprintf(buf, len, "rate %.1f MB/s, queue %lld", ev.before / 1e6,
                    static_cast<long long>(ev.detail));
      break;
    case obs::EventKind::kBwGrant:
    case obs::EventKind::kBwShrink:
      std::snprintf(buf, len, "%.1f -> %.1f MB/s", ev.before / 1e6,
                    ev.after / 1e6);
      break;
    case obs::EventKind::kTelemetryRejected:
      // `before` is the resource flag (0 = CPU, 2 = bandwidth). CPU carries
      // the implausible claimed rate in `after` (cores); bandwidth carries
      // the NIC cap in `after` and the claimed bytes/s in `detail`.
      if (ev.before == 0.0) {
        std::snprintf(buf, len, "claimed %.3f cores", ev.after);
      } else {
        std::snprintf(buf, len, "claimed %.1f MB/s (nic %.1f)",
                      static_cast<double>(ev.detail) / 1e6, ev.after / 1e6);
      }
      break;
    case obs::EventKind::kCreditCharge:
    case obs::EventKind::kCreditRefund:
      // Balances in credits (fair-share-seconds); detail is the over/under
      // share amount the sweep priced (millicores, or bytes for memory).
      std::snprintf(buf, len, "%.4f -> %.4f cr", ev.before, ev.after);
      break;
    case obs::EventKind::kGreedyThrottle:
      std::snprintf(buf, len, "%.3f -> %.3f cores (streak %lld)", ev.before,
                    ev.after, static_cast<long long>(ev.detail));
      break;
    case obs::EventKind::kShardAdvertise:
      // before = CPU surplus cores, after = memory surplus bytes, detail =
      // bandwidth surplus bytes/s.
      std::snprintf(buf, len, "surplus %.3f cores, %.1f MiB", ev.before,
                    ev.after / (1024.0 * 1024.0));
      break;
    case obs::EventKind::kBorrowRequest:
    case obs::EventKind::kBorrowGrant:
    case obs::EventKind::kBorrowReturn: {
      // detail packs (peer shard << 48) | per-pair sequence.
      char amount[32];
      format_resource_amount(ev.before, ev.after, amount, sizeof amount);
      std::snprintf(buf, len, "%s peer s%lld seq %lld", amount,
                    static_cast<long long>(ev.detail >> 48),
                    static_cast<long long>(ev.detail & 0xffffffffffffLL));
      break;
    }
    case obs::EventKind::kShardPoolResize: {
      char before_s[32], after_s[32];
      format_resource_amount(static_cast<double>(ev.detail), ev.before,
                             before_s, sizeof before_s);
      format_resource_amount(static_cast<double>(ev.detail), ev.after,
                             after_s, sizeof after_s);
      std::snprintf(buf, len, "pool %s -> %s", before_s, after_s);
      break;
    }
    case obs::EventKind::kRtAdmitted:
      // after = admitted floor; detail packs (runtime us << 32) | period us.
      std::snprintf(buf, len, "floor %.3f cores (rt %.1f/%.1f ms)", ev.after,
                    static_cast<double>(ev.detail >> 32) / 1000.0,
                    static_cast<double>(ev.detail & 0xffffffff) / 1000.0);
      break;
    case obs::EventKind::kRtRejected:
      std::snprintf(buf, len, "floor %.3f cores rejected (%s)", ev.after,
                    ev.detail == 0   ? "node bound"
                    : ev.detail == 1 ? "pool bound"
                    : ev.detail == 2 ? "bw bound"
                                     : "state");
      break;
    case obs::EventKind::kRtEvicted:
      std::snprintf(buf, len, "floor %.3f freed (%s)", ev.before,
                    ev.detail == 0   ? "released"
                    : ev.detail == 1 ? "node dead"
                                     : "operator");
      break;
    case obs::EventKind::kDeadlineMiss:
      // before = floor, after = the allocation at the miss, detail = the
      // core-time still owed when the deadline passed.
      std::snprintf(buf, len, "owed %.1f ms at %.3f cores (floor %.3f)",
                    static_cast<double>(ev.detail) / 1000.0, ev.after,
                    ev.before);
      break;
  }
}

void print_event(const obs::TraceEvent& ev) {
  char limits[96];
  format_limits(ev, limits, sizeof limits);
  std::printf("  #%-6llu %12.6fs  %-20s c%-4u n%-3u %-26s cause=#%llu\n",
              static_cast<unsigned long long>(ev.id),
              sim::to_seconds(ev.time), obs::event_kind_name(ev.kind),
              ev.container, ev.node, limits,
              static_cast<unsigned long long>(ev.cause));
}

// Local name table for FaultKind values carried in kFaultInjected/Cleared
// `detail` fields (kept here so the trace reader doesn't pull in the whole
// fault/core stack). Mirrors fault::FaultKind.
const char* fault_detail_name(std::int64_t kind) {
  switch (kind) {
    case 1: return "partition";
    case 2: return "agent-crash";
    case 3: return "controller-crash";
    case 4: return "rpc-drop";
    case 5: return "rpc-duplicate";
    case 6: return "delay-spike";
    case 7: return "leader-kill";
    default: return "unknown";
  }
}

// One degraded window: a kFaultInjected event and (if the trace covers it)
// the matching kFaultCleared. Matched by (kind, node) in injection order.
struct FaultWindow {
  const obs::TraceEvent* injected = nullptr;
  const obs::TraceEvent* cleared = nullptr;
};

// Recovery traffic attributed to one controller incarnation. A trace that
// spans failovers must not smear one epoch's degradation over another: "12
// retransmits" means something different when 11 of them happened under the
// deposed leader. Segments are delimited by kLeaderElected events; the
// first segment's epoch is back-filled from the first election's
// `before` field (or stays 0, displayed as the initial incarnation, when
// the trace saw no election).
struct EpochRecovery {
  std::uint64_t epoch = 0;
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;  // start of the next epoch; 0 = trace end
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t fail_static_entries = 0;
  std::uint64_t nodes_dead = 0;
  std::uint64_t nodes_alive = 0;
  std::uint64_t fenced = 0;
};

int run_summary(const obs::TraceBuffer& trace) {
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::uint32_t, std::uint64_t> by_container;
  std::uint64_t retransmits = 0, dup_suppressed = 0, resyncs = 0;
  std::uint64_t fail_static_entries = 0, nodes_dead = 0, nodes_alive = 0;
  std::uint64_t fenced_updates = 0;
  std::vector<FaultWindow> windows;
  std::vector<EpochRecovery> epochs(1);
  std::vector<const obs::TraceEvent*> elections;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    ++by_kind[obs::event_kind_name(ev.kind)];
    if (ev.container != 0) ++by_container[ev.container];
    EpochRecovery& epoch = epochs.back();
    switch (ev.kind) {
      case obs::EventKind::kRetransmit:
        ++retransmits;
        ++epoch.retransmits;
        break;
      case obs::EventKind::kDuplicateSuppressed:
        ++dup_suppressed;
        ++epoch.dup_suppressed;
        break;
      case obs::EventKind::kResync:
        ++resyncs;
        ++epoch.resyncs;
        break;
      case obs::EventKind::kFailStatic:
        if (ev.detail != 0) {
          ++fail_static_entries;
          ++epoch.fail_static_entries;
        }
        break;
      case obs::EventKind::kNodeDead:
        ++nodes_dead;
        ++epoch.nodes_dead;
        break;
      case obs::EventKind::kNodeAlive:
        ++nodes_alive;
        ++epoch.nodes_alive;
        break;
      case obs::EventKind::kEpochFenced:
        ++fenced_updates;
        ++epoch.fenced;
        break;
      case obs::EventKind::kLeaderElected: {
        elections.push_back(&ev);
        if (epochs.size() == 1 && epoch.epoch == 0) {
          epoch.epoch = static_cast<std::uint64_t>(ev.before);
        }
        epoch.end = ev.time;
        EpochRecovery next;
        next.epoch = static_cast<std::uint64_t>(ev.detail);
        next.start = ev.time;
        epochs.push_back(next);
        break;
      }
      case obs::EventKind::kFaultInjected:
        windows.push_back(FaultWindow{&ev, nullptr});
        break;
      case obs::EventKind::kFaultCleared:
        for (FaultWindow& w : windows) {
          if (w.cleared == nullptr && w.injected->detail == ev.detail &&
              w.injected->node == ev.node) {
            w.cleared = &ev;
            break;
          }
        }
        break;
      default: break;
    }
  }
  if (trace.size() == 0) {
    std::printf("empty trace\n");
    return 0;
  }
  std::printf("%zu events (%llu recorded, %llu evicted), %12.6fs .. %.6fs\n",
              trace.size(),
              static_cast<unsigned long long>(trace.recorded()),
              static_cast<unsigned long long>(trace.evicted()),
              sim::to_seconds(trace.at(0).time),
              sim::to_seconds(trace.at(trace.size() - 1).time));
  std::printf("\nby kind:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-22s %8llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nby container (%zu):\n", by_container.size());
  for (const auto& [container, count] : by_container) {
    std::printf("  c%-6u %8llu\n", container,
                static_cast<unsigned long long>(count));
  }
  if (retransmits + dup_suppressed + resyncs + fail_static_entries +
          nodes_dead + nodes_alive + fenced_updates + windows.size() +
          elections.size() >
      0) {
    std::printf("\nrecovery:\n");
    std::printf("  retransmits            %8llu\n",
                static_cast<unsigned long long>(retransmits));
    std::printf("  duplicates suppressed  %8llu\n",
                static_cast<unsigned long long>(dup_suppressed));
    std::printf("  resyncs                %8llu\n",
                static_cast<unsigned long long>(resyncs));
    std::printf("  fail-static entries    %8llu\n",
                static_cast<unsigned long long>(fail_static_entries));
    std::printf("  nodes dead / recovered %8llu / %llu\n",
                static_cast<unsigned long long>(nodes_dead),
                static_cast<unsigned long long>(nodes_alive));
    if (fenced_updates > 0) {
      std::printf("  fenced updates         %8llu\n",
                  static_cast<unsigned long long>(fenced_updates));
    }
    // A trace spanning failovers gets the recovery traffic broken down per
    // controller incarnation — one leader's degraded window must not be
    // read as another's.
    if (!elections.empty()) {
      std::printf("  by controller epoch (%zu):\n", epochs.size());
      for (const EpochRecovery& e : epochs) {
        char span[64];
        if (e.end != 0) {
          std::snprintf(span, sizeof span, "%12.6fs .. %.6fs",
                        sim::to_seconds(e.start), sim::to_seconds(e.end));
        } else {
          std::snprintf(span, sizeof span, "%12.6fs .. end",
                        sim::to_seconds(e.start));
        }
        std::printf("    epoch %-4llu %-28s retransmits %llu, resyncs %llu, "
                    "fail-static %llu, fenced %llu\n",
                    static_cast<unsigned long long>(e.epoch), span,
                    static_cast<unsigned long long>(e.retransmits),
                    static_cast<unsigned long long>(e.resyncs),
                    static_cast<unsigned long long>(e.fail_static_entries),
                    static_cast<unsigned long long>(e.fenced));
      }
      std::printf("  elections (%zu):\n", elections.size());
      for (const obs::TraceEvent* ev : elections) {
        std::printf("    epoch %.0f -> %lld at %12.6fs, %.0f slot(s) "
                    "replayed\n",
                    ev->before, static_cast<long long>(ev->detail),
                    sim::to_seconds(ev->time), ev->after);
      }
    }
    if (!windows.empty()) {
      std::printf("  fault windows (%zu):\n", windows.size());
      for (const FaultWindow& w : windows) {
        if (w.cleared != nullptr) {
          std::printf("    %-16s n%-3u %12.6fs .. %.6fs\n",
                      fault_detail_name(w.injected->detail),
                      w.injected->node, sim::to_seconds(w.injected->time),
                      sim::to_seconds(w.cleared->time));
        } else {
          std::printf("    %-16s n%-3u %12.6fs .. (never cleared in trace)\n",
                      fault_detail_name(w.injected->detail),
                      w.injected->node, sim::to_seconds(w.injected->time));
        }
      }
    }
  }
  return 0;
}

int run_container(const obs::TraceBuffer& trace, std::uint32_t container) {
  const auto events = trace.for_container(container);
  if (events.empty()) {
    std::printf("no events for container %u\n", container);
    return 1;
  }
  std::printf("container %u: %zu events\n", container, events.size());
  for (const obs::TraceEvent& ev : events) print_event(ev);
  return 0;
}

// Credit-ledger view of one container: how the defense saw this tenant.
// Balances ride on kCreditCharge/kCreditRefund events (before/after in
// credits); a contiguous span of non-positive balances is a debt window —
// the period the Υ-gate held the tenant to its fair share.
int run_tenant(const obs::TraceBuffer& trace, std::uint32_t container) {
  const auto events = trace.for_container(container);
  if (events.empty()) {
    std::printf("no events for container %u\n", container);
    return 1;
  }
  std::uint64_t charges = 0, refunds = 0, rejected = 0, throttles = 0;
  std::uint64_t oom_grants = 0, cpu_grants = 0, cpu_shrinks = 0;
  double charged = 0.0, refunded = 0.0;
  double first_balance = 0.0, last_balance = 0.0, min_balance = 0.0;
  bool seen_balance = false;
  struct DebtWindow {
    sim::TimePoint start = 0;
    sim::TimePoint end = 0;  // 0 = still in debt at trace end
  };
  std::vector<DebtWindow> debt;
  bool in_debt = false;
  for (const obs::TraceEvent& ev : events) {
    switch (ev.kind) {
      case obs::EventKind::kCreditCharge:
      case obs::EventKind::kCreditRefund: {
        if (ev.kind == obs::EventKind::kCreditCharge) {
          ++charges;
          charged += ev.before - ev.after;
        } else {
          ++refunds;
          refunded += ev.after - ev.before;
        }
        if (!seen_balance) {
          seen_balance = true;
          first_balance = ev.before;
          min_balance = ev.before;
        }
        last_balance = ev.after;
        if (ev.after < min_balance) min_balance = ev.after;
        if (ev.after <= 0.0 && !in_debt) {
          in_debt = true;
          debt.push_back(DebtWindow{ev.time, 0});
        } else if (ev.after > 0.0 && in_debt) {
          in_debt = false;
          debt.back().end = ev.time;
        }
        break;
      }
      case obs::EventKind::kTelemetryRejected: ++rejected; break;
      case obs::EventKind::kGreedyThrottle: ++throttles; break;
      case obs::EventKind::kMemGrantOnOom: ++oom_grants; break;
      case obs::EventKind::kCpuGrant: ++cpu_grants; break;
      case obs::EventKind::kCpuShrink: ++cpu_shrinks; break;
      default: break;
    }
  }
  std::printf("tenant c%u: %zu events, %12.6fs .. %.6fs\n", container,
              events.size(), sim::to_seconds(events.front().time),
              sim::to_seconds(events.back().time));
  std::printf("  grants: cpu %llu (+%llu shrinks), mem-on-oom %llu\n",
              static_cast<unsigned long long>(cpu_grants),
              static_cast<unsigned long long>(cpu_shrinks),
              static_cast<unsigned long long>(oom_grants));
  if (!seen_balance) {
    std::printf("  no credit events — defense idle for this tenant\n");
    return 0;
  }
  std::printf("  balance: %.4f -> %.4f cr (min %.4f)\n", first_balance,
              last_balance, min_balance);
  std::printf("  above-share charges %llu (-%.4f cr), below-share refunds "
              "%llu (+%.4f cr)\n",
              static_cast<unsigned long long>(charges), charged,
              static_cast<unsigned long long>(refunds), refunded);
  std::printf("  telemetry rejected %llu, greedy throttles %llu\n",
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(throttles));
  if (!debt.empty()) {
    std::printf("  debt windows (%zu):\n", debt.size());
    for (const DebtWindow& w : debt) {
      if (w.end != 0) {
        std::printf("    %12.6fs .. %.6fs\n", sim::to_seconds(w.start),
                    sim::to_seconds(w.end));
      } else {
        std::printf("    %12.6fs .. (still broke at trace end)\n",
                    sim::to_seconds(w.start));
      }
    }
  } else {
    std::printf("  never in debt\n");
  }
  return 0;
}

// One shard of a merged multi-shard export (obs::export_merged_jsonl stamps
// every event with its recording shard + 1). Summarises the shard's decision
// activity, its borrow-protocol traffic per peer, and the pool-slice
// trajectory, then prints the shard-protocol timeline (adverts elided — at
// one broadcast per 500ms they would drown the borrows they exist to
// enable).
int run_shard(const obs::TraceBuffer& trace, std::uint32_t shard) {
  const std::uint32_t want = shard + 1;  // TraceEvent::shard is index + 1
  std::map<std::uint32_t, std::uint64_t> shards_seen;
  std::map<std::string, std::uint64_t> by_kind;
  // Borrow traffic per peer shard: [requests, grants, returns] counts and
  // the CPU/memory amounts moved.
  struct PeerTraffic {
    std::uint64_t requests = 0, grants = 0, returns = 0;
    double cpu_cores = 0.0;
    double mem_bytes = 0.0;
  };
  std::map<std::uint32_t, PeerTraffic> peers;
  std::uint64_t adverts = 0;
  std::uint64_t matched = 0;
  // Pool trajectory per resource (0 = CPU, 1 = mem, 2 = bw).
  double pool_first[3] = {0, 0, 0};
  double pool_last[3] = {0, 0, 0};
  bool pool_seen[3] = {false, false, false};
  std::vector<const obs::TraceEvent*> timeline;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    if (ev.shard != 0) ++shards_seen[ev.shard - 1];
    if (ev.shard != want) continue;
    ++matched;
    ++by_kind[obs::event_kind_name(ev.kind)];
    switch (ev.kind) {
      case obs::EventKind::kShardAdvertise: ++adverts; break;
      case obs::EventKind::kBorrowRequest:
      case obs::EventKind::kBorrowGrant:
      case obs::EventKind::kBorrowReturn: {
        PeerTraffic& p = peers[static_cast<std::uint32_t>(ev.detail >> 48)];
        if (ev.kind == obs::EventKind::kBorrowRequest) ++p.requests;
        if (ev.kind == obs::EventKind::kBorrowGrant) ++p.grants;
        if (ev.kind == obs::EventKind::kBorrowReturn) ++p.returns;
        if (ev.before == 0.0) p.cpu_cores += ev.after;
        if (ev.before == 1.0) p.mem_bytes += ev.after;
        timeline.push_back(&ev);
        break;
      }
      case obs::EventKind::kShardPoolResize: {
        const int res = ev.detail >= 0 && ev.detail < 3
                            ? static_cast<int>(ev.detail)
                            : 0;
        if (!pool_seen[res]) {
          pool_seen[res] = true;
          pool_first[res] = ev.before;
        }
        pool_last[res] = ev.after;
        timeline.push_back(&ev);
        break;
      }
      default: break;
    }
  }
  if (matched == 0) {
    std::printf("no events for shard %u\n", shard);
    if (shards_seen.empty()) {
      std::printf("trace carries no shard provenance — export it with "
                  "obs::export_merged_jsonl (escra-sim --shards N)\n");
    } else {
      std::printf("shards present:");
      for (const auto& [s, n] : shards_seen) {
        std::printf(" %u (%llu events)", s,
                    static_cast<unsigned long long>(n));
      }
      std::printf("\n");
    }
    return 1;
  }
  std::printf("shard %u: %llu events (%zu shards in trace)\n", shard,
              static_cast<unsigned long long>(matched), shards_seen.size());
  std::printf("\nby kind:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-22s %8llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nborrow traffic (adverts sent %llu):\n",
              static_cast<unsigned long long>(adverts));
  if (peers.empty()) {
    std::printf("  none — shard never borrowed, lent, or returned\n");
  }
  for (const auto& [peer, t] : peers) {
    std::printf("  peer s%-3u requests %llu, grants %llu, returns %llu "
                "(%.3f cores, %.1f MiB moved)\n",
                peer, static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.grants),
                static_cast<unsigned long long>(t.returns), t.cpu_cores,
                t.mem_bytes / (1024.0 * 1024.0));
  }
  const char* pool_unit[3] = {"cores", "MiB", "MB/s"};
  const double pool_scale[3] = {1.0, 1024.0 * 1024.0, 1e6};
  for (int res = 0; res < 3; ++res) {
    if (!pool_seen[res]) continue;
    std::printf("  pool (%s): %.3f -> %.3f %s over the trace\n",
                res == 0 ? "cpu" : res == 1 ? "mem" : "bw",
                pool_first[res] / pool_scale[res],
                pool_last[res] / pool_scale[res], pool_unit[res]);
  }
  if (!timeline.empty()) {
    std::printf("\nshard-protocol timeline (%zu events, adverts elided):\n",
                timeline.size());
    for (const obs::TraceEvent* ev : timeline) print_event(*ev);
  }
  return 0;
}

// Per-RT-container deadline view: the mixed-criticality class's lifecycle
// as the trace recorded it — every admission with its floor and (runtime,
// period) contract, deadline misses with the worst core-time shortfall,
// rejections, and how each reservation ended (explicit eviction or held to
// the end of the trace; a kill without a preceding eviction would be an
// invariant violation, not a display case).
int run_rt(const obs::TraceBuffer& trace) {
  struct RtLife {
    std::vector<const obs::TraceEvent*> admissions;
    std::vector<const obs::TraceEvent*> evictions;
    std::uint64_t rejections = 0;
    std::uint64_t misses = 0;
    std::int64_t worst_owed_us = 0;
    sim::TimePoint first_miss = 0, last_miss = 0;
  };
  std::map<std::uint32_t, RtLife> lives;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& ev = trace.at(i);
    switch (ev.kind) {
      case obs::EventKind::kRtAdmitted:
        lives[ev.container].admissions.push_back(&ev);
        break;
      case obs::EventKind::kRtRejected:
        ++lives[ev.container].rejections;
        break;
      case obs::EventKind::kRtEvicted:
        lives[ev.container].evictions.push_back(&ev);
        break;
      case obs::EventKind::kDeadlineMiss: {
        RtLife& l = lives[ev.container];
        if (l.misses == 0) l.first_miss = ev.time;
        ++l.misses;
        l.last_miss = ev.time;
        if (ev.detail > l.worst_owed_us) l.worst_owed_us = ev.detail;
        break;
      }
      default: break;
    }
  }
  if (lives.empty()) {
    std::printf("no real-time events — rt class idle in this trace\n");
    return 0;
  }
  std::printf("rt containers (%zu):\n", lives.size());
  for (const auto& [container, l] : lives) {
    std::printf("  c%u:\n", container);
    for (const obs::TraceEvent* ev : l.admissions) {
      std::printf("    admitted at %12.6fs: floor %.3f cores "
                  "(runtime %.1f ms / period %.1f ms)\n",
                  sim::to_seconds(ev->time), ev->after,
                  static_cast<double>(ev->detail >> 32) / 1000.0,
                  static_cast<double>(ev->detail & 0xffffffff) / 1000.0);
    }
    if (l.rejections > 0) {
      std::printf("    rejections %llu\n",
                  static_cast<unsigned long long>(l.rejections));
    }
    if (l.misses > 0) {
      std::printf("    deadline misses %llu (%12.6fs .. %.6fs, worst "
                  "shortfall %.1f ms of core-time)\n",
                  static_cast<unsigned long long>(l.misses),
                  sim::to_seconds(l.first_miss),
                  sim::to_seconds(l.last_miss),
                  static_cast<double>(l.worst_owed_us) / 1000.0);
    } else if (!l.admissions.empty()) {
      std::printf("    no deadline misses\n");
    }
    for (const obs::TraceEvent* ev : l.evictions) {
      std::printf("    evicted at %12.6fs (%s, floor %.3f cores freed)\n",
                  sim::to_seconds(ev->time),
                  ev->detail == 0   ? "released"
                  : ev->detail == 1 ? "node dead"
                                    : "operator",
                  ev->before);
    }
    if (!l.admissions.empty() &&
        l.evictions.size() < l.admissions.size()) {
      std::printf("    reservation held to trace end\n");
    }
  }
  return 0;
}

int run_chain(const obs::TraceBuffer& trace, obs::EventId id) {
  if (trace.find(id) == nullptr) {
    std::fprintf(stderr, "event #%llu not in trace (evicted or never "
                 "recorded)\n",
                 static_cast<unsigned long long>(id));
    return 1;
  }
  const auto chain = trace.chain(id);
  std::printf("causal chain for #%llu (%zu hops, root first):\n",
              static_cast<unsigned long long>(id), chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    print_event(chain[i]);
    if (i + 1 < chain.size()) {
      std::printf("           |  +%.3f ms\n",
                  static_cast<double>(chain[i + 1].time - chain[i].time) /
                      1000.0);
    }
  }
  if (chain.size() > 1) {
    std::printf("end-to-end: %.3f ms\n",
                static_cast<double>(chain.back().time - chain.front().time) /
                    1000.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 1;
  }
  obs::TraceBuffer trace(1);  // replaced by import below
  try {
    trace = obs::TraceBuffer::import_jsonl(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error parsing %s: %s\n", argv[1], e.what());
    return 1;
  }

  if (argc == 2) return run_summary(trace);
  const std::string mode = argv[2];
  if (argc == 3 && mode == "--rt") return run_rt(trace);
  if (argc == 4 && (mode == "--container" || mode == "--chain" ||
                    mode == "--tenant" || mode == "--shard")) {
    std::uint64_t id = 0;
    try {
      std::size_t pos = 0;
      id = std::stoull(argv[3], &pos);
      if (argv[3][pos] != '\0') throw std::invalid_argument("trailing chars");
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: %s expects a numeric id, got '%s'\n",
                   mode.c_str(), argv[3]);
      return 2;
    }
    if (mode == "--container") {
      return run_container(trace, static_cast<std::uint32_t>(id));
    }
    if (mode == "--tenant") {
      return run_tenant(trace, static_cast<std::uint32_t>(id));
    }
    if (mode == "--shard") {
      return run_shard(trace, static_cast<std::uint32_t>(id));
    }
    return run_chain(trace, id);
  }
  usage();
  return 2;
}
