// escra-fuzz: deterministic scenario fuzzer for the invariant checker.
//
//   escra-fuzz [options]
//
//     --runs N            scenarios to run                    (default 100)
//     --seed S            base seed; run i uses seed S + i    (default 1)
//     --jobs N            worker threads; 0 = hardware        (default 1)
//     --trace-tail N      trace events dumped on a violation  (default 200)
//     --repro-out FILE    write the first run's generated scenario as JSON;
//                         if a violation occurs, the violating run's
//                         scenario is written there instead
//     --fault-profile     overlay a seed-derived fault schedule on every
//                         scenario (partitions, agent/controller crashes,
//                         RPC drop/duplicate/delay faults); the checker runs
//                         with its fault-aware in-flight tracking, so a
//                         clean exit means the invariants held *through*
//                         the faults. Fault draws are appended after all
//                         scenario draws, so a seed's scenario is identical
//                         with and without this flag.
//     --standbys N        attach a warm-standby replicated controller (N
//                         standbys) to tenant 0 of every scenario
//     --bw                overlay the bandwidth plane: a ClusterShaper over
//                         every node, tenant 0's bandwidth arm
//                         (enable_bandwidth) with a seed-derived NIC size,
//                         global pool, and tunables, plus background
//                         attributed send_flow streams between tenant 0's
//                         containers so both token-bucket directions see
//                         load. The checker runs with the bandwidth
//                         invariants armed (pool conservation, per-NIC rate
//                         sums, grant floors, counter<->trace consistency).
//                         Bandwidth draws use a dedicated rng stream, so a
//                         seed's scenario is identical with and without
//                         this flag.
//     --leader-churn      use the leader-churn fault profile instead of the
//                         default: permanent leader kills dominate and
//                         probabilistic faults may hit the HA replication
//                         channel (implies --fault-profile; requires
//                         --standbys >= 1). Like --fault-profile, the
//                         scenario draws are unchanged, so a seed's scenario
//                         is identical with and without this flag.
//     --greedy            overlay an adversarial tenant: credit_defense on
//                         tenant 0, a seed-derived workload::GreedyTenant
//                         (strategy, lie fraction, impossible-report
//                         fraction, cadences) forging telemetry from a
//                         subset of tenant 0's containers, and the credit
//                         invariants (conservation, honest floor) armed on
//                         the checker. Greedy draws use a dedicated rng
//                         stream, so a seed's scenario is identical with
//                         and without this flag. The sweep is additionally
//                         non-vacuous: at least one credit charge and one
//                         forged report/phantom event must land across the
//                         whole sweep or the exit status is 1. Composes
//                         with --fault-profile, --standbys/--leader-churn
//                         (credit balances must survive takeover), and any
//                         --jobs count byte-identically.
//     --rt                overlay the mixed-criticality real-time class: a
//                         seed-derived admission plan against tenant 0 (a
//                         subset of its containers, each with a
//                         deadline = period reservation, period a multiple
//                         of 100ms, utilization <= 0.3) admitted mid-run
//                         through the Controller's utilization-bound tests,
//                         with a fraction of the reservations revoked later
//                         by operator eviction. The checker runs with the
//                         RT invariants armed (never-reclaim floors,
//                         explicit-eviction-before-kill, admission
//                         conservation, allocator-caused deadline misses
//                         are violations). RT draws use a dedicated rng
//                         stream, so a seed's scenario is identical with
//                         and without this flag. The sweep is additionally
//                         non-vacuous: at least one reservation must be
//                         admitted across the whole sweep or the exit
//                         status is 1 (tenant-caused misses — overrun, RPC
//                         loss — are reported but allowed; a miss while the
//                         allocator books the container below its floor is
//                         a violation). Composes with --fault-profile,
//                         --standbys/--leader-churn (the admitted set must
//                         survive takeover), --greedy (greedy tenants must
//                         not starve RT floors), --shards (admission debits
//                         the owning shard's slice), and any --jobs count
//                         byte-identically.
//     --shards N          run every scenario through a sharded control
//                         plane (shard::ShardedControlPlane, N shards)
//                         instead of per-tenant EscraSystems: each tenant
//                         plan becomes an application routed to its shard
//                         by consistent hashing, every shard gets its own
//                         observer and InvariantChecker, and the
//                         cross-shard conservation checker
//                         (check::ShardInvariantChecker) sweeps the
//                         borrow protocol's pool identity through the
//                         whole run. The scenario draws are untouched, so
//                         a seed's scenario is identical with and without
//                         this flag. Composes with --fault-profile,
//                         --standbys/--leader-churn (per-shard warm
//                         standbys; shard 0 takes the faults), --legacy-rpc,
//                         and any --jobs count byte-identically; --bw and
//                         --greedy are per-tenant overlays and are
//                         rejected. With N >= 2 the sweep is additionally
//                         non-vacuous: at least one cross-shard borrow
//                         grant must land across the whole sweep or the
//                         exit status is 1.
//     --legacy-rpc        run every tenant with batch_limit_updates=false —
//                         the legacy one-RPC-per-update wire path instead
//                         of the coalesced per-node batches. The scenario
//                         draws are untouched, so a seed's scenario is
//                         identical with and without this flag; only the
//                         transport differs. Used by CI to fuzz both paths.
//     --force-overgrant   plant a violation: mid-run, set one container's
//                         CPU cgroup directly past the global limit,
//                         bypassing the allocator (checker must catch it)
//     --rss-check         assert a flat memory footprint: resident set after
//                         the full sweep must not exceed the post-warmup
//                         baseline by more than a small slack (guards the
//                         event-engine pools against leaks); forces --jobs 1
//     --quiet             only print failures and the final summary
//
// Runs are fanned out across a sweep::Runner thread pool (--jobs). Every
// observable output is independent of the job count: outcomes are
// aggregated in seed order, violation reports are buffered per run and
// printed in that order, and each scenario owns its Simulation and Rng, so
// --jobs 8 prints byte-for-byte what --jobs 1 prints.
//
// Each run derives everything — cluster topology, tenant count, Escra
// tunables, workload mix (steady request streams, batch bursts, resident-
// memory spikes, a late joiner), telemetry loss — from a single sim::Rng
// seeded with S + i, runs a short simulation with an InvariantChecker
// attached to every tenant, and reports any violation with the seed, the
// generated scenario config, and the tail of the decision trace. Because
// the scenario is a pure function of its seed, a failure replays
// byte-identically with:
//
//   escra-fuzz --seed <printed seed> --runs 1 [--force-overgrant]
//
// Exit status: 0 all runs clean, 1 violations found, 2 usage error.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "adv/greedy.h"
#include "bw/shaper.h"
#include "cfs/rt.h"
#include "check/invariant_checker.h"
#include "check/shard_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "fault/fault_injector.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/sharded_control_plane.h"
#include "sim/rng.h"
#include "sweep/runner.h"

using namespace escra;

namespace {

struct Options {
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  int jobs = 1;
  std::size_t trace_tail = 200;
  std::string repro_out;
  bool fault_profile = false;
  int standbys = 0;
  bool leader_churn = false;
  bool bw = false;
  bool greedy = false;
  bool rt = false;
  int shards = 0;
  bool legacy_rpc = false;
  bool force_overgrant = false;
  bool rss_check = false;
  bool quiet = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: escra-fuzz [--runs N] [--seed S] [--jobs N]\n"
               "                  [--trace-tail N] [--repro-out FILE]\n"
               "                  [--fault-profile] [--standbys N]\n"
               "                  [--leader-churn] [--bw] [--greedy] [--rt]\n"
               "                  [--shards N] [--legacy-rpc]\n"
               "                  [--force-overgrant] [--rss-check] [--quiet]\n");
}

// Strict numeric parsing: the whole token must be consumed, so "12abc" and
// "" are rejected instead of silently truncated.
std::uint64_t parse_u64(const std::string& flag, const char* text) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &used);
  } catch (const std::exception&) {
    throw std::runtime_error(flag + " needs an unsigned integer, got '" +
                             text + "'");
  }
  if (used != std::strlen(text)) {
    throw std::runtime_error(flag + " needs an unsigned integer, got '" +
                             text + "'");
  }
  return value;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--runs") {
      opts.runs = parse_u64(flag, next());
    } else if (flag == "--seed") {
      opts.seed = parse_u64(flag, next());
    } else if (flag == "--jobs") {
      opts.jobs = static_cast<int>(parse_u64(flag, next()));
    } else if (flag == "--trace-tail") {
      opts.trace_tail = static_cast<std::size_t>(parse_u64(flag, next()));
    } else if (flag == "--repro-out") {
      opts.repro_out = next();
    } else if (flag == "--fault-profile") {
      opts.fault_profile = true;
    } else if (flag == "--standbys") {
      opts.standbys = static_cast<int>(parse_u64(flag, next()));
    } else if (flag == "--leader-churn") {
      opts.leader_churn = true;
      opts.fault_profile = true;
    } else if (flag == "--bw") {
      opts.bw = true;
    } else if (flag == "--greedy") {
      opts.greedy = true;
    } else if (flag == "--rt") {
      opts.rt = true;
    } else if (flag == "--shards") {
      opts.shards = static_cast<int>(parse_u64(flag, next()));
    } else if (flag == "--legacy-rpc") {
      opts.legacy_rpc = true;
    } else if (flag == "--force-overgrant") {
      opts.force_overgrant = true;
    } else if (flag == "--rss-check") {
      opts.rss_check = true;
    } else if (flag == "--quiet") {
      opts.quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      return std::nullopt;
    } else {
      throw std::runtime_error("unknown flag " + flag);
    }
  }
  return opts;
}

// --- scenario generation -------------------------------------------------
//
// A Scenario is a pure function of its seed: generation draws from the rng
// in one fixed order, so the same seed always yields the same scenario (and
// the same per-component child rngs, via fork()).

struct ContainerPlan {
  double parallelism = 4.0;
  std::int64_t base_mem = 64 * memcg::kMiB;
  std::int64_t startup_cpu_ms = 0;
  double rate_per_s = 50.0;      // request arrival rate
  double cpu_cost_ms = 5.0;      // lognormal median per-request core-ms
  double cpu_cost_sigma = 0.4;
  std::int64_t mem_per_item = 2 * memcg::kMiB;
  bool bursty = false;           // batch submits instead of a steady stream
  double resident_spike_p = 0.0; // per-second chance of a residency spike
};

struct TenantPlan {
  double global_cpu = 8.0;
  std::int64_t global_mem = memcg::kGiB;
  core::EscraConfig cfg;
  std::vector<ContainerPlan> containers;
  bool late_joiner = false;  // one extra container adopted mid-run
};

struct Scenario {
  std::uint64_t seed = 0;
  int nodes = 1;
  double cores_per_node = 16.0;
  double loss_rate = 0.0;
  double duration_s = 4.0;
  // Overlay a seed-derived fault schedule (set from --fault-profile, not
  // drawn: a seed's scenario is byte-identical with and without faults).
  bool fault_profile = false;
  // Warm-standby replicated controller on tenant 0 (set from --standbys /
  // --leader-churn after generation, for the same reason).
  int standbys = 0;
  bool leader_churn = false;
  // Bandwidth overlay on tenant 0 (set from --bw; its draws come from a
  // dedicated rng stream inside run_scenario, never from the scenario rng).
  bool bw = false;
  // Adversarial overlay on tenant 0 (set from --greedy; like --bw, its
  // draws come from a dedicated rng stream, never from the scenario rng).
  bool greedy = false;
  // Real-time admission plan against tenant 0 (set from --rt; like --bw,
  // its draws come from a dedicated rng stream, never from the scenario
  // rng).
  bool rt = false;
  // Sharded control plane with this many shards (set from --shards, not
  // drawn: only the control-plane topology changes, never the scenario).
  int shards = 0;
  // Legacy one-RPC-per-update wire path (set from --legacy-rpc, not drawn:
  // only the transport changes, never the scenario).
  bool legacy_rpc = false;
  std::vector<TenantPlan> tenants;
};

Scenario generate(std::uint64_t seed) {
  sim::Rng rng(seed);
  Scenario s;
  s.seed = seed;
  s.nodes = static_cast<int>(rng.uniform_int(1, 4));
  s.cores_per_node = static_cast<double>(rng.uniform_int(4, 32));
  s.loss_rate = rng.chance(0.3) ? rng.uniform(0.0, 0.2) : 0.0;
  s.duration_s = rng.uniform(2.0, 8.0);

  const int tenants = static_cast<int>(rng.uniform_int(1, 2));
  for (int t = 0; t < tenants; ++t) {
    TenantPlan tp;
    tp.global_cpu =
        rng.uniform(2.0, s.nodes * s.cores_per_node / tenants + 2.0);
    tp.global_mem = rng.uniform_int(256, 2048) * memcg::kMiB;

    core::EscraConfig& cfg = tp.cfg;
    cfg.kappa = rng.uniform(0.4, 1.0);
    cfg.gamma = rng.uniform(0.05, 0.5);
    cfg.upsilon = static_cast<double>(rng.uniform_int(5, 40));
    cfg.window_periods = static_cast<std::size_t>(rng.uniform_int(2, 8));
    cfg.min_cores = rng.uniform(0.02, 0.1);
    cfg.delta = rng.uniform_int(16, 128) * memcg::kMiB;
    cfg.reclaim_interval = sim::seconds(rng.uniform_int(1, 5));
    cfg.sigma = rng.uniform(0.0, 0.4);
    cfg.oom_grant = rng.uniform_int(4, 32) * memcg::kMiB;
    cfg.min_mem = rng.uniform_int(8, 32) * memcg::kMiB;
    cfg.late_join_cores = rng.uniform(0.5, 2.0);
    cfg.late_join_mem = rng.uniform_int(64, 512) * memcg::kMiB;

    const int containers = static_cast<int>(rng.uniform_int(1, 6));
    for (int c = 0; c < containers; ++c) {
      ContainerPlan cp;
      cp.parallelism = static_cast<double>(rng.uniform_int(1, 8));
      cp.base_mem = rng.uniform_int(16, 128) * memcg::kMiB;
      cp.startup_cpu_ms = rng.chance(0.5) ? rng.uniform_int(0, 1000) : 0;
      cp.rate_per_s = rng.uniform(10.0, 400.0);
      cp.cpu_cost_ms = rng.uniform(0.5, 20.0);
      cp.cpu_cost_sigma = rng.uniform(0.1, 0.8);
      cp.mem_per_item = rng.uniform_int(256, 8192) * memcg::kKiB;
      cp.bursty = rng.chance(0.25);
      cp.resident_spike_p = rng.chance(0.3) ? rng.uniform(0.05, 0.5) : 0.0;
      tp.containers.push_back(cp);
    }
    tp.late_joiner = rng.chance(0.4);
    s.tenants.push_back(tp);
  }
  return s;
}

void append_kv(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.17g", key, value);
  out += buf;
}

std::string to_json(const Scenario& s) {
  std::string out = "{\n  ";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"seed\": %" PRIu64 ", \"nodes\": %d, ", s.seed, s.nodes);
  out += buf;
  append_kv(out, "cores_per_node", s.cores_per_node);
  out += ", ";
  append_kv(out, "loss_rate", s.loss_rate);
  out += ", ";
  append_kv(out, "duration_s", s.duration_s);
  out += ", ";
  out += s.fault_profile ? "\"fault_profile\": true"
                         : "\"fault_profile\": false";
  std::snprintf(buf, sizeof(buf), ", \"standbys\": %d, ", s.standbys);
  out += buf;
  out += s.leader_churn ? "\"leader_churn\": true"
                        : "\"leader_churn\": false";
  out += s.bw ? ", \"bw\": true" : ", \"bw\": false";
  out += s.greedy ? ", \"greedy\": true" : ", \"greedy\": false";
  out += s.rt ? ", \"rt\": true" : ", \"rt\": false";
  std::snprintf(buf, sizeof(buf), ", \"shards\": %d", s.shards);
  out += buf;
  out += s.legacy_rpc ? ", \"legacy_rpc\": true" : ", \"legacy_rpc\": false";
  out += ",\n  \"tenants\": [";
  for (std::size_t t = 0; t < s.tenants.size(); ++t) {
    const TenantPlan& tp = s.tenants[t];
    out += t == 0 ? "{\n    " : ", {\n    ";
    append_kv(out, "global_cpu", tp.global_cpu);
    out += ", ";
    append_kv(out, "global_mem", static_cast<double>(tp.global_mem));
    out += ", ";
    out += tp.late_joiner ? "\"late_joiner\": true" : "\"late_joiner\": false";
    out += ",\n    \"config\": {";
    append_kv(out, "kappa", tp.cfg.kappa);
    out += ", ";
    append_kv(out, "gamma", tp.cfg.gamma);
    out += ", ";
    append_kv(out, "upsilon", tp.cfg.upsilon);
    out += ", ";
    append_kv(out, "window_periods",
              static_cast<double>(tp.cfg.window_periods));
    out += ", ";
    append_kv(out, "min_cores", tp.cfg.min_cores);
    out += ", ";
    append_kv(out, "delta", static_cast<double>(tp.cfg.delta));
    out += ", ";
    append_kv(out, "reclaim_interval_us",
              static_cast<double>(tp.cfg.reclaim_interval));
    out += ", ";
    append_kv(out, "sigma", tp.cfg.sigma);
    out += ", ";
    append_kv(out, "oom_grant", static_cast<double>(tp.cfg.oom_grant));
    out += ", ";
    append_kv(out, "min_mem", static_cast<double>(tp.cfg.min_mem));
    out += ", ";
    append_kv(out, "late_join_cores", tp.cfg.late_join_cores);
    out += ", ";
    append_kv(out, "late_join_mem", static_cast<double>(tp.cfg.late_join_mem));
    out += "},\n    \"containers\": [";
    for (std::size_t c = 0; c < tp.containers.size(); ++c) {
      const ContainerPlan& cp = tp.containers[c];
      out += c == 0 ? "{" : ", {";
      append_kv(out, "parallelism", cp.parallelism);
      out += ", ";
      append_kv(out, "base_mem", static_cast<double>(cp.base_mem));
      out += ", ";
      append_kv(out, "startup_cpu_ms",
                static_cast<double>(cp.startup_cpu_ms));
      out += ", ";
      append_kv(out, "rate_per_s", cp.rate_per_s);
      out += ", ";
      append_kv(out, "cpu_cost_ms", cp.cpu_cost_ms);
      out += ", ";
      append_kv(out, "cpu_cost_sigma", cp.cpu_cost_sigma);
      out += ", ";
      append_kv(out, "mem_per_item", static_cast<double>(cp.mem_per_item));
      out += ", ";
      out += cp.bursty ? "\"bursty\": true" : "\"bursty\": false";
      out += ", ";
      append_kv(out, "resident_spike_p", cp.resident_spike_p);
      out += "}";
    }
    out += "]\n  }";
  }
  out += "]\n}\n";
  return out;
}

// --- scenario execution --------------------------------------------------

// Steady stream: exponential inter-arrivals. Bursty: the same mean load
// delivered as batches of 10-50 items at exponential batch intervals.
void schedule_arrivals(sim::Simulation& sim, cluster::Container& container,
                       const ContainerPlan& plan,
                       std::shared_ptr<sim::Rng> rng, sim::TimePoint end) {
  const double batch_mean = plan.bursty ? 25.0 : 1.0;
  const double batch_rate = plan.rate_per_s / batch_mean;  // batches per s
  const double mu = std::log(plan.cpu_cost_ms);
  const auto next_gap = [rng, batch_rate] {
    return std::max<sim::Duration>(
        1, static_cast<sim::Duration>(1e6 / batch_rate *
                                      rng->exponential(1.0)));
  };
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&sim, &container, plan, rng, end, mu, next_gap, tick] {
    if (sim.now() > end) return;
    const std::int64_t batch =
        plan.bursty ? rng->uniform_int(10, 50) : 1;
    for (std::int64_t i = 0; i < batch; ++i) {
      const double cost_ms = rng->lognormal(mu, plan.cpu_cost_sigma);
      container.submit(
          std::max<sim::Duration>(
              1, static_cast<sim::Duration>(cost_ms * 1000.0)),
          plan.mem_per_item, [](bool) {});
    }
    sim.schedule_after(next_gap(), *tick);
  };
  sim.schedule_after(next_gap(), *tick);
}

void schedule_resident_spikes(sim::Simulation& sim,
                              cluster::Container& container,
                              const ContainerPlan& plan,
                              std::shared_ptr<sim::Rng> rng,
                              sim::TimePoint end) {
  if (plan.resident_spike_p <= 0.0) return;
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&sim, &container, plan, rng, end, tick] {
    if (sim.now() > end) return;
    if (rng->chance(plan.resident_spike_p) && container.running()) {
      // Load or drop a cache: grow residency, shrink it again later.
      const memcg::Bytes spike = rng->uniform_int(8, 64) * memcg::kMiB;
      container.adjust_resident(spike);
      sim.schedule_after(
          sim::seconds(1),
          [&container, spike] {
            if (container.running()) container.adjust_resident(-spike);
          });
    }
    sim.schedule_after(sim::kSecond, *tick);
  };
  sim.schedule_after(sim::kSecond, *tick);
}

// Background data-plane load for the --bw overlay: a steady attributed
// send_flow stream between two tenant-0 containers, endpoints resolved to
// the owning nodes at send time. Both the sender's egress lane and the
// receiver's ingress lane see the bytes, so the shaper queues, throttle
// telemetry, and the allocator's bandwidth arm all get exercised.
void schedule_bw_traffic(sim::Simulation& sim, net::Network& net,
                         cluster::Cluster& k8s, cluster::ContainerId from,
                         cluster::ContainerId to, double rate_per_s,
                         std::int64_t bytes, std::shared_ptr<sim::Rng> rng,
                         sim::TimePoint end) {
  const auto next_gap = [rng, rate_per_s] {
    return std::max<sim::Duration>(
        1, static_cast<sim::Duration>(1e6 / rate_per_s *
                                      rng->exponential(1.0)));
  };
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&sim, &net, &k8s, from, to, bytes, next_gap, end, tick] {
    if (sim.now() > end) return;
    cluster::Node* src = k8s.node_of(from);
    cluster::Node* dst = k8s.node_of(to);
    if (src != nullptr && dst != nullptr) {
      net.send_flow(net::Channel::kAppData,
                    static_cast<net::EndpointId>(src->id()),
                    static_cast<net::EndpointId>(dst->id()), from, to,
                    static_cast<std::size_t>(bytes), [] {});
    }
    sim.schedule_after(next_gap(), *tick);
  };
  sim.schedule_after(next_gap(), *tick);
}

// --rt overlay: the admission plan — which tenant-0 containers declare a
// reservation, the (runtime, deadline, period) triple, when the admission
// lands, and whether an operator revokes it later — is pre-drawn from the
// dedicated rt rng before the run starts, so scheduled-callback ordering
// never perturbs the draw sequence and --jobs stays byte-identical.
// Reservations are deliberately conservative (deadline = period, period a
// multiple of 100ms, utilization <= 0.3): the sweep probes whether the
// allocator honors floors it admitted, not whether admission control
// rejects infeasible contracts (the rejection paths get exercised anyway
// when small nodes or small pools run out of RT headroom).
struct RtPlanEntry {
  std::size_t member = 0;        // index into tenant 0's initial containers
  cfs::RtSpec spec;
  sim::TimePoint admit_at = 0;
  sim::TimePoint evict_at = 0;   // 0: reservation held until teardown
};

std::vector<RtPlanEntry> draw_rt_plan(sim::Rng& rng, std::size_t members,
                                      sim::TimePoint end) {
  std::vector<RtPlanEntry> plan;
  for (std::size_t m = 0; m < members; ++m) {
    // Seed-derived subset, at least one container (the greedy attach idiom).
    if (!rng.chance(0.5) && !(plan.empty() && m + 1 == members)) continue;
    RtPlanEntry e;
    e.member = m;
    e.spec.period = sim::milliseconds(100 * rng.uniform_int(1, 5));
    e.spec.deadline = e.spec.period;  // implicit deadlines: floor = util
    e.spec.runtime = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(rng.uniform(0.05, 0.3) *
                                      static_cast<double>(e.spec.period)));
    e.admit_at = rng.uniform_int(sim::milliseconds(50), end / 2);
    if (rng.chance(0.3)) {
      e.evict_at = rng.uniform_int(e.admit_at + e.spec.period, end);
    }
    plan.push_back(e);
  }
  return plan;
}

struct RunOutcome {
  bool violated = false;
  // --greedy non-vacuity accounting, summed across the sweep in main().
  std::uint64_t greedy_attacks = 0;   // forged reports + phantom OOM events
  std::uint64_t credit_charges = 0;
  // --shards non-vacuity accounting: cross-shard borrow grants this run.
  std::uint64_t borrow_grants = 0;
  // --rt non-vacuity accounting: reservations admitted/rejected and
  // deadline misses observed this run (allocator-caused misses are checker
  // violations; these totals report the tenant-caused remainder).
  std::uint64_t rt_admissions = 0;
  std::uint64_t rt_rejections = 0;
  std::uint64_t rt_misses = 0;
  std::string report;
  // Full diagnostic text for a violation (report, scenario JSON, trace
  // tail, replay line), buffered so parallel runs never interleave output:
  // main prints these in seed order.
  std::string failure_text;
  std::uint64_t events = 0;
  std::uint64_t sweeps = 0;
};

std::string trace_tail_to_string(const obs::TraceBuffer& trace,
                                 std::size_t tail) {
  const std::size_t n = std::min(tail, trace.size());
  char buf[256];
  std::snprintf(buf, sizeof(buf), "last %zu trace events:\n", n);
  std::string out = buf;
  for (std::size_t i = trace.size() - n; i < trace.size(); ++i) {
    const obs::TraceEvent& e = trace.at(i);
    std::snprintf(buf, sizeof(buf),
                  "  #%" PRIu64 " t=%" PRId64 "us %-20s c=%u n=%u "
                  "before=%.6g after=%.6g cause=%" PRIu64 " detail=%" PRId64
                  "\n",
                  e.id, e.time, obs::event_kind_name(e.kind), e.container,
                  e.node, e.before, e.after, e.cause, e.detail);
    out += buf;
  }
  return out;
}

// Sharded execution (--shards N): the same scenario — same cluster, same
// container plans, same workload rng draws in the same order — but the
// per-tenant EscraSystems are replaced by one shard::ShardedControlPlane
// over the summed tenant pools, with each tenant plan managed as one
// application ("t0", "t1", ...) routed to its shard by consistent hashing.
// Every shard gets its own Observer + InvariantChecker (network counter
// rules stay dormant: net metrics are global, not per shard) and the
// cross-shard conservation checker sweeps the borrow protocol's pool
// identity through the whole run. Tenant-level Escra tunables collapse to
// tenant 0's config: the plane runs one EscraConfig for all shards.
RunOutcome run_sharded_scenario(const Scenario& s, bool force_overgrant,
                                std::size_t trace_tail) {
  sim::Rng root(s.seed ^ 0x9e3779b97f4a7c15ULL);  // workload stream
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int n = 0; n < s.nodes; ++n) {
    k8s.add_node(cluster::NodeConfig{.cores = s.cores_per_node});
  }
  if (s.loss_rate > 0.0) network.set_loss(s.loss_rate, root.fork());

  double total_cpu = 0.0;
  memcg::Bytes total_mem = 0;
  for (const TenantPlan& tp : s.tenants) {
    total_cpu += tp.global_cpu;
    total_mem += tp.global_mem;
  }

  shard::ShardPlaneConfig pcfg;
  pcfg.shards = s.shards;
  pcfg.escra = s.tenants.front().cfg;
  if (s.legacy_rpc) pcfg.escra.batch_limit_updates = false;

  // Observers are declared before the plane (they must outlive it) and
  // attached before manage() so registration events land in the trace.
  std::vector<std::unique_ptr<obs::Observer>> observers;
  for (int sh = 0; sh < s.shards; ++sh) {
    observers.push_back(std::make_unique<obs::Observer>());
  }
  shard::ShardedControlPlane plane(simulation, network, k8s, total_cpu,
                                   total_mem, pcfg);
  for (int sh = 0; sh < s.shards; ++sh) {
    plane.attach_observer(sh, *observers[sh]);
  }

  const sim::TimePoint end = sim::seconds_f(s.duration_s);
  std::vector<cluster::ContainerId> rt_candidates;
  for (std::size_t t = 0; t < s.tenants.size(); ++t) {
    const TenantPlan& tp = s.tenants[t];
    std::vector<cluster::Container*> members;
    for (std::size_t c = 0; c < tp.containers.size(); ++c) {
      const ContainerPlan& cp = tp.containers[c];
      cluster::ContainerSpec spec;
      spec.name = "t" + std::to_string(t) + "-c" + std::to_string(c);
      spec.max_parallelism = cp.parallelism;
      spec.base_memory = cp.base_mem;
      spec.startup_cpu = sim::milliseconds(cp.startup_cpu_ms);
      cluster::Container& container =
          k8s.create_container(spec, 1.0, 256 * memcg::kMiB);
      members.push_back(&container);
      if (t == 0) rt_candidates.push_back(container.id());
      auto rng = std::make_shared<sim::Rng>(root.fork());
      schedule_arrivals(simulation, container, cp, rng, end);
      schedule_resident_spikes(simulation, container, cp,
                               std::make_shared<sim::Rng>(root.fork()), end);
    }
    const std::string app = "t" + std::to_string(t);
    plane.manage(app, members);

    if (tp.late_joiner) {
      // Mid-run pod, adopted by re-managing the same application: the
      // router pins the app to its shard, so the late joiner lands on the
      // owning shard's controller (the adopt path), exactly as the
      // Container Watcher would deliver it.
      shard::ShardedControlPlane* plane_ptr = &plane;
      cluster::Cluster* cluster = &k8s;
      sim::Simulation* sim_ptr = &simulation;
      const std::string name = app + "-late";
      ContainerPlan cp = tp.containers.front();
      auto rng = std::make_shared<sim::Rng>(root.fork());
      simulation.schedule_at(
          end / 2, [plane_ptr, cluster, sim_ptr, app, name, cp, rng, end] {
            cluster::ContainerSpec spec;
            spec.name = name;
            spec.max_parallelism = cp.parallelism;
            spec.base_memory = cp.base_mem;
            cluster::Container& late =
                cluster->create_container(spec, 0.5, 128 * memcg::kMiB);
            plane_ptr->manage(app, {&late});
            schedule_arrivals(*sim_ptr, late, cp, rng, end);
          });
    }
  }

  plane.start();

  // Per-shard invariant checkers (pool conservation, limit floors,
  // counter<->trace consistency within each shard) plus the plane-level
  // cross-shard conservation sweep. Constructed after start() like the
  // unsharded path; destroyed before the plane and observers.
  std::vector<std::unique_ptr<check::InvariantChecker>> checkers;
  for (int sh = 0; sh < s.shards; ++sh) {
    checkers.push_back(std::make_unique<check::InvariantChecker>(
        plane.shard(sh), network, *observers[sh]));
  }
  check::ShardInvariantChecker shard_checker(plane);

  // Per-shard warm standbys on disjoint endpoint bands (after start(): the
  // bootstrap snapshots then cover every registered container).
  if (s.standbys > 0) plane.enable_ha(s.standbys);

  // Real-time overlay: the pre-drawn admission plan, routed through the
  // plane so each reservation debits its owning shard's base slice.
  // Admissions land after the checkers are armed; a crashed shard leader or
  // an unregistered id degrades to a counted rejection, never a fault.
  if (s.rt) {
    sim::Rng rt_rng(s.seed ^ 0xdead11e5c0deULL);
    shard::ShardedControlPlane* plane_ptr = &plane;
    for (const RtPlanEntry& e : draw_rt_plan(rt_rng, rt_candidates.size(),
                                             end)) {
      const cluster::ContainerId id = rt_candidates[e.member];
      const cfs::RtSpec spec = e.spec;
      simulation.schedule_at(e.admit_at, [plane_ptr, id, spec] {
        plane_ptr->admit_rt(id, spec);
      });
      if (e.evict_at > 0) {
        simulation.schedule_at(e.evict_at, [plane_ptr, id] {
          const int sh = plane_ptr->shard_of_container(id);
          if (sh >= 0) {
            plane_ptr->shard(sh).controller().evict_rt(id, /*reason=*/2);
          }
        });
      }
    }
  }

  // Fault overlay: same dedicated rng streams as the unsharded path.
  // Partitions act network-wide; crash faults target shard 0's control
  // plane — the borrow protocol must hold conservation through them.
  std::optional<fault::FaultInjector> injector;
  if (s.fault_profile) {
    network.set_fault_rng(sim::Rng(s.seed ^ 0x5eedf417c0deULL));
    injector.emplace(simulation, network, plane.shard(0));
    sim::Rng fault_rng(s.seed ^ 0xfa017a5c4ed01eULL);
    injector->schedule_random(fault_rng, end,
                              s.leader_churn
                                  ? fault::FaultInjector::leader_churn_profile()
                                  : fault::FaultInjector::Profile{},
                              s.nodes);
  }

  if (force_overgrant) {
    // Planted violation: a cgroup limit past the whole cluster pool, so
    // some shard's checker must flag it no matter which slice owns the
    // container.
    shard::ShardedControlPlane* plane_ptr = &plane;
    cluster::Cluster* cluster = &k8s;
    simulation.schedule_at(
        end / 2 + sim::milliseconds(50), [plane_ptr, cluster] {
          cluster::Container* victim = cluster->containers().front();
          victim->cpu_cgroup().set_limit_cores(
              plane_ptr->cluster_cpu_limit() * 2.0 + 4.0);
        });
  }

  simulation.run_until(end);

  RunOutcome outcome;
  outcome.borrow_grants = plane.borrows_granted();
  if (s.rt) {
    for (int sh = 0; sh < s.shards; ++sh) {
      outcome.rt_admissions += observers[sh]->h.rt_admitted->value();
      outcome.rt_rejections += observers[sh]->h.rt_rejected->value();
      outcome.rt_misses += observers[sh]->h.deadline_misses->value();
    }
  }
  for (int sh = 0; sh < s.shards; ++sh) {
    checkers[sh]->check_now();
    outcome.events += checkers[sh]->events_checked();
    outcome.sweeps += checkers[sh]->sweeps();
    if (!checkers[sh]->ok()) {
      outcome.violated = true;
      outcome.report += checkers[sh]->report();
    }
  }
  shard_checker.check_now();
  outcome.sweeps += shard_checker.sweeps();
  if (!shard_checker.ok()) {
    outcome.violated = true;
    outcome.report += shard_checker.report();
  }
  if (outcome.violated) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "seed %" PRIu64 ": INVARIANT VIOLATION\n",
                  s.seed);
    outcome.failure_text = buf;
    outcome.failure_text += outcome.report;
    outcome.failure_text += "scenario config:\n";
    outcome.failure_text += to_json(s);
    // Per-shard trace tails: each shard's controller records into its own
    // observer, so the decisions behind a violation live on the owning
    // shard, not on shard 0.
    for (int sh = 0; sh < s.shards; ++sh) {
      std::snprintf(buf, sizeof(buf), "shard %d ", sh);
      outcome.failure_text += buf;
      outcome.failure_text +=
          trace_tail_to_string(observers[sh]->trace(), trace_tail);
    }
    char standby_flags[48] = "";
    if (s.standbys > 0) {
      std::snprintf(standby_flags, sizeof(standby_flags), " --standbys %d%s",
                    s.standbys, s.leader_churn ? " --leader-churn" : "");
    }
    std::snprintf(buf, sizeof(buf),
                  "replay: escra-fuzz --seed %" PRIu64
                  " --runs 1 --shards %d%s%s%s%s%s\n",
                  s.seed, s.shards,
                  s.fault_profile && !s.leader_churn ? " --fault-profile" : "",
                  standby_flags, s.rt ? " --rt" : "",
                  s.legacy_rpc ? " --legacy-rpc" : "",
                  force_overgrant ? " --force-overgrant" : "");
    outcome.failure_text += buf;
  }
  return outcome;
}

RunOutcome run_scenario(const Scenario& s, bool force_overgrant,
                        std::size_t trace_tail) {
  if (s.shards > 0) return run_sharded_scenario(s, force_overgrant, trace_tail);
  sim::Rng root(s.seed ^ 0x9e3779b97f4a7c15ULL);  // workload stream
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int n = 0; n < s.nodes; ++n) {
    k8s.add_node(cluster::NodeConfig{.cores = s.cores_per_node});
  }
  if (s.loss_rate > 0.0) network.set_loss(s.loss_rate, root.fork());
  // No jitter: reordered control RPCs would legitimately break the
  // conservation invariants the checker enforces (FIFO per channel is part
  // of the modelled transport contract).

  // Bandwidth overlay: drawn from a dedicated stream (like the fault
  // schedule) so the scenario itself is byte-identical without --bw. The
  // NIC is sized generously against the per-container grant floor, so a
  // clean exit means conservation held because the controller enforced it,
  // not because the floor was unsatisfiable. Declared before the tenants so
  // the shaper outlives the controllers that reference it.
  std::optional<sim::Rng> bw_rng;
  std::optional<bw::ClusterShaper> shaper;
  double bw_global = 0.0;
  if (s.bw) {
    bw_rng.emplace(s.seed ^ 0xb3a4d71dc0deULL);
    const double nic_bps =
        static_cast<double>(bw_rng->uniform_int(25, 100)) * 1.0e6;
    bw_global = bw_rng->uniform(5.0e6, 0.5 * s.nodes * nic_bps);
    shaper.emplace(simulation);
    for (int n = 0; n < s.nodes; ++n) {
      shaper->add_node(static_cast<std::uint32_t>(n), nic_bps);
    }
    network.set_shaper(&*shaper);
  }

  struct Tenant {
    std::unique_ptr<core::EscraSystem> escra;
    std::unique_ptr<obs::Observer> observer;
    std::unique_ptr<check::InvariantChecker> checker;
  };
  std::vector<Tenant> tenants;
  // Adversarial overlay: drawn from a dedicated stream (like --bw and the
  // fault schedule) so the scenario itself is byte-identical without
  // --greedy. Declared before the tenants only in rng terms — the tenant
  // object itself is built after tenant 0 starts (it needs the live
  // Controller) and destroyed before the cluster (its teardown restores
  // truthful telemetry on the containers it forged).
  std::optional<sim::Rng> greedy_rng;
  std::optional<workload::GreedyTenant> greedy;
  if (s.greedy) greedy_rng.emplace(s.seed ^ 0x64eed7c0deULL);
  const sim::TimePoint end = sim::seconds_f(s.duration_s);
  std::vector<cluster::ContainerId> rt_candidates;

  for (std::size_t t = 0; t < s.tenants.size(); ++t) {
    const TenantPlan& tp = s.tenants[t];
    Tenant tenant;
    core::EscraConfig cfg = tp.cfg;
    if (s.legacy_rpc) cfg.batch_limit_updates = false;
    // The adversarial overlay fights a defended control plane: the point of
    // the sweep is that the credit machinery holds its invariants under
    // arbitrary scenarios, not that lying is profitable.
    if (s.greedy && t == 0) cfg.credit_defense = true;
    if (s.bw && t == 0) {
      // Tenant 0 runs the bandwidth arm; its tunables come from the
      // dedicated bw stream so the base config draws stay untouched.
      cfg.bw_kappa = bw_rng->uniform(0.4, 1.0);
      cfg.bw_gamma = bw_rng->uniform(0.5e6, 4.0e6);
      cfg.bw_upsilon = static_cast<double>(bw_rng->uniform_int(5, 40));
    }
    tenant.escra = std::make_unique<core::EscraSystem>(
        simulation, network, k8s, tp.global_cpu, tp.global_mem, cfg);
    tenant.observer = std::make_unique<obs::Observer>();
    tenant.escra->attach_observer(*tenant.observer);
    if (t == 0) network.attach_metrics(tenant.observer->metrics());
    if (s.bw && t == 0) {
      shaper->set_observer(tenant.observer.get());
      tenant.escra->enable_bandwidth(*shaper, bw_global);
    }

    std::vector<cluster::Container*> members;
    for (std::size_t c = 0; c < tp.containers.size(); ++c) {
      const ContainerPlan& cp = tp.containers[c];
      cluster::ContainerSpec spec;
      spec.name = "t" + std::to_string(t) + "-c" + std::to_string(c);
      spec.max_parallelism = cp.parallelism;
      spec.base_memory = cp.base_mem;
      spec.startup_cpu = sim::milliseconds(cp.startup_cpu_ms);
      cluster::Container& container =
          k8s.create_container(spec, 1.0, 256 * memcg::kMiB);
      members.push_back(&container);
      if (t == 0) rt_candidates.push_back(container.id());
      auto rng = std::make_shared<sim::Rng>(root.fork());
      schedule_arrivals(simulation, container, cp, rng, end);
      schedule_resident_spikes(simulation, container, cp,
                               std::make_shared<sim::Rng>(root.fork()), end);
    }
    tenant.escra->manage(members);
    tenant.escra->start();
    tenant.checker = std::make_unique<check::InvariantChecker>(
        *tenant.escra, network, *tenant.observer);
    if (s.bw && t == 0) {
      tenant.checker->attach_bw(*shaper);
      // Ring of attributed streams: container i pushes to container i+1,
      // so every shaped container carries egress and ingress load.
      for (std::size_t c = 0; c < members.size(); ++c) {
        schedule_bw_traffic(
            simulation, network, k8s, members[c]->id(),
            members[(c + 1) % members.size()]->id(),
            bw_rng->uniform(20.0, 120.0), bw_rng->uniform_int(2, 48) * 1024,
            std::make_shared<sim::Rng>(bw_rng->fork()), end);
      }
    }

    if (s.greedy && t == 0) {
      tenant.checker->attach_credits(tenant.escra->controller().credits());
      workload::GreedyProfile gp;
      gp.strategy = static_cast<workload::GreedyStrategy>(
          greedy_rng->uniform_int(0, 3));
      gp.lie_fraction = greedy_rng->uniform(0.5, 1.0);
      gp.impossible_fraction =
          greedy_rng->chance(0.4) ? greedy_rng->uniform(0.05, 0.5) : 0.0;
      gp.phantom_interval =
          sim::milliseconds(greedy_rng->uniform_int(100, 600));
      gp.phantom_shortfall = greedy_rng->uniform_int(2, 32) * memcg::kMiB;
      gp.rotate_interval =
          sim::milliseconds(greedy_rng->uniform_int(300, 1500));
      greedy.emplace(simulation, tenant.escra->controller(), gp,
                     greedy_rng->fork());
      // Colluders need the whole pool of accomplices; the other strategies
      // corrupt a seed-derived subset (at least one container).
      bool any = false;
      for (std::size_t c = 0; c < members.size(); ++c) {
        if (gp.strategy == workload::GreedyStrategy::kColluding ||
            greedy_rng->chance(0.5) || (!any && c + 1 == members.size())) {
          greedy->attach(*members[c]);
          any = true;
        }
      }
      greedy->start(sim::milliseconds(200));
    }

    if (tp.late_joiner) {
      // A pod created mid-run and adopted (Container Watcher path): it
      // draws late-join defaults from whatever the pool still holds.
      core::EscraSystem* escra = tenant.escra.get();
      cluster::Cluster* cluster = &k8s;
      sim::Simulation* sim_ptr = &simulation;
      const std::string name = "t" + std::to_string(t) + "-late";
      ContainerPlan cp = tp.containers.front();
      auto rng = std::make_shared<sim::Rng>(root.fork());
      simulation.schedule_at(
          end / 2, [escra, cluster, sim_ptr, name, cp, rng, end] {
            cluster::ContainerSpec spec;
            spec.name = name;
            spec.max_parallelism = cp.parallelism;
            spec.base_memory = cp.base_mem;
            cluster::Container& late =
                cluster->create_container(spec, 0.5, 128 * memcg::kMiB);
            escra->adopt(late);
            schedule_arrivals(*sim_ptr, late, cp, rng, end);
          });
    }
    tenants.push_back(std::move(tenant));
  }

  // Real-time overlay: the pre-drawn admission plan against tenant 0.
  // Admissions land mid-run, after the checker is armed, so every
  // kRtAdmitted/kRtEvicted rides the trace and the never-reclaim floor is
  // enforced from the first decision; a crashed controller degrades an
  // admission to a counted rejection, never a fault.
  if (s.rt) {
    sim::Rng rt_rng(s.seed ^ 0xdead11e5c0deULL);
    core::EscraSystem* escra = tenants.front().escra.get();
    for (const RtPlanEntry& e : draw_rt_plan(rt_rng, rt_candidates.size(),
                                             end)) {
      const cluster::ContainerId id = rt_candidates[e.member];
      const cfs::RtSpec spec = e.spec;
      simulation.schedule_at(e.admit_at, [escra, id, spec] {
        escra->controller().admit_rt(id, spec);
      });
      if (e.evict_at > 0) {
        simulation.schedule_at(e.evict_at, [escra, id] {
          escra->controller().evict_rt(id, /*reason=*/2);
        });
      }
    }
  }

  // Warm-standby replicated controller on tenant 0, constructed after its
  // system started (the bootstrap snapshot then covers every registered
  // container) and declared after the tenants so it is destroyed first —
  // its destructor detaches the replication hook.
  std::optional<ha::HaControlPlane> ha;
  if (s.standbys > 0) {
    ha::HaConfig ha_cfg;
    ha_cfg.standbys = s.standbys;
    ha.emplace(*tenants.front().escra, network, ha_cfg);
    ha->start();
  }

  // Fault overlay: a deterministic schedule drawn from a seed-derived rng
  // *after* all scenario draws (a dedicated stream, so scenarios stay
  // byte-identical without it). Partitions act network-wide; crash faults
  // target tenant 0's control plane, whose observer records the windows.
  std::optional<fault::FaultInjector> injector;
  if (s.fault_profile) {
    network.set_fault_rng(sim::Rng(s.seed ^ 0x5eedf417c0deULL));
    injector.emplace(simulation, network, *tenants.front().escra);
    sim::Rng fault_rng(s.seed ^ 0xfa017a5c4ed01eULL);
    injector->schedule_random(fault_rng, end,
                              s.leader_churn
                                  ? fault::FaultInjector::leader_churn_profile()
                                  : fault::FaultInjector::Profile{},
                              s.nodes);
  }

  if (force_overgrant) {
    // Planted violation: write a CPU limit straight into a cgroup,
    // bypassing the allocator and the Distributed Container pool — the
    // over-commit Escra must never produce. Planted mid-period so the next
    // sweep (at the period boundary) sees it before any corrective RPC.
    core::EscraSystem* escra = tenants.front().escra.get();
    cluster::Cluster* cluster = &k8s;
    simulation.schedule_at(end / 2 + sim::milliseconds(50), [escra, cluster] {
      cluster::Container* victim = cluster->containers().front();
      victim->cpu_cgroup().set_limit_cores(escra->app().cpu_limit() * 2.0 +
                                           4.0);
    });
  }

  simulation.run_until(end);

  RunOutcome outcome;
  if (s.greedy) {
    outcome.greedy_attacks = greedy->lies_told() + greedy->phantom_ooms();
    outcome.credit_charges =
        tenants.front().observer->h.credit_charges->value();
  }
  if (s.rt) {
    outcome.rt_admissions = tenants.front().observer->h.rt_admitted->value();
    outcome.rt_rejections = tenants.front().observer->h.rt_rejected->value();
    outcome.rt_misses = tenants.front().observer->h.deadline_misses->value();
  }
  for (Tenant& tenant : tenants) {
    tenant.checker->check_now();
    outcome.events += tenant.checker->events_checked();
    outcome.sweeps += tenant.checker->sweeps();
    if (!tenant.checker->ok()) {
      outcome.violated = true;
      outcome.report += tenant.checker->report();
    }
  }
  if (outcome.violated) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "seed %" PRIu64 ": INVARIANT VIOLATION\n",
                  s.seed);
    outcome.failure_text = buf;
    outcome.failure_text += outcome.report;
    outcome.failure_text += "scenario config:\n";
    outcome.failure_text += to_json(s);
    outcome.failure_text +=
        trace_tail_to_string(tenants.front().observer->trace(), trace_tail);
    char standby_flags[48] = "";
    if (s.standbys > 0) {
      std::snprintf(standby_flags, sizeof(standby_flags), " --standbys %d%s",
                    s.standbys, s.leader_churn ? " --leader-churn" : "");
    }
    std::snprintf(buf, sizeof(buf),
                  "replay: escra-fuzz --seed %" PRIu64
                  " --runs 1%s%s%s%s%s%s%s\n",
                  s.seed,
                  s.fault_profile && !s.leader_churn ? " --fault-profile" : "",
                  standby_flags, s.bw ? " --bw" : "",
                  s.greedy ? " --greedy" : "", s.rt ? " --rt" : "",
                  s.legacy_rpc ? " --legacy-rpc" : "",
                  force_overgrant ? " --force-overgrant" : "");
    outcome.failure_text += buf;
  }
  return outcome;
}

// Resident set size in KiB, from /proc/self/statm (Linux).
long current_rss_kib() {
  std::ifstream statm("/proc/self/statm");
  long total_pages = 0, resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return -1;
  const long page_bytes = sysconf(_SC_PAGESIZE);
  return resident_pages * (page_bytes > 0 ? page_bytes : 4096) / 1024;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    const auto parsed = parse_args(argc, argv);
    if (!parsed.has_value()) {
      usage();
      return 2;
    }
    opts = *parsed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }

  if (opts.leader_churn && opts.standbys < 1) {
    std::fprintf(stderr,
                 "error: --leader-churn requires --standbys >= 1 (a killed "
                 "leader never restarts; only a standby takes the seat)\n");
    return 2;
  }

  // Overlay conflicts are rejected up front, and the error names the exact
  // conflicting pair (not the whole compatibility matrix): a CI log line
  // must say which two flags fought, so the fix is obvious from the message
  // alone. First active pair wins when several flags conflict at once.
  struct Conflict {
    bool active;
    const char* a;
    const char* b;
    const char* why;
  };
  const Conflict conflicts[] = {
      {opts.shards > 0 && opts.bw, "--shards", "--bw",
       "the bandwidth plane is a per-tenant overlay and is not supported "
       "under sharding"},
      {opts.shards > 0 && opts.greedy, "--shards", "--greedy",
       "the adversarial tenant is a per-tenant overlay and is not supported "
       "under sharding"},
  };
  for (const Conflict& c : conflicts) {
    if (c.active) {
      std::fprintf(stderr, "error: %s conflicts with %s (%s)\n", c.a, c.b,
                   c.why);
      return 2;
    }
  }

  if (!opts.repro_out.empty()) {
    // The first run's scenario is written up front (generation is a pure
    // function of the seed, so no need to wait for the run itself).
    Scenario scenario = generate(opts.seed);
    scenario.fault_profile = opts.fault_profile;
    scenario.standbys = opts.standbys;
    scenario.leader_churn = opts.leader_churn;
    scenario.bw = opts.bw;
    scenario.greedy = opts.greedy;
    scenario.rt = opts.rt;
    scenario.shards = opts.shards;
    scenario.legacy_rpc = opts.legacy_rpc;
    std::ofstream out(opts.repro_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opts.repro_out.c_str());
      return 2;
    }
    out << to_json(scenario);
    if (!opts.quiet) {
      std::printf("scenario for seed %" PRIu64 " written to %s\n", opts.seed,
                  opts.repro_out.c_str());
    }
  }

  // RSS flatness needs one run at a time and a stable warmup point, so the
  // check pins the sweep to a single worker.
  const int jobs = opts.rss_check ? 1 : opts.jobs;
  constexpr std::uint64_t kRssWarmupRuns = 5;
  long rss_baseline_kib = -1;

  const std::vector<RunOutcome> outcomes =
      sweep::parallel_map<RunOutcome>(opts.runs, jobs, [&](std::size_t i) {
        Scenario scenario = generate(opts.seed + i);  // wrapping is fine
        scenario.fault_profile = opts.fault_profile;
        scenario.standbys = opts.standbys;
        scenario.leader_churn = opts.leader_churn;
        scenario.bw = opts.bw;
        scenario.greedy = opts.greedy;
        scenario.rt = opts.rt;
        scenario.shards = opts.shards;
        scenario.legacy_rpc = opts.legacy_rpc;
        RunOutcome outcome =
            run_scenario(scenario, opts.force_overgrant, opts.trace_tail);
        if (opts.rss_check && i + 1 == kRssWarmupRuns) {
          rss_baseline_kib = current_rss_kib();
        }
        return outcome;
      });

  // Aggregate in seed order: totals, progress lines, and failure output are
  // identical regardless of the job count.
  std::uint64_t violations = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_sweeps = 0;
  std::uint64_t total_attacks = 0;
  std::uint64_t total_charges = 0;
  std::uint64_t total_grants = 0;
  std::uint64_t total_rt_admissions = 0;
  std::uint64_t total_rt_rejections = 0;
  std::uint64_t total_rt_misses = 0;
  bool wrote_violation_repro = false;
  for (std::uint64_t i = 0; i < opts.runs; ++i) {
    const RunOutcome& outcome = outcomes[i];
    total_events += outcome.events;
    total_sweeps += outcome.sweeps;
    total_attacks += outcome.greedy_attacks;
    total_charges += outcome.credit_charges;
    total_grants += outcome.borrow_grants;
    total_rt_admissions += outcome.rt_admissions;
    total_rt_rejections += outcome.rt_rejections;
    total_rt_misses += outcome.rt_misses;
    if (outcome.violated) {
      ++violations;
      std::fputs(outcome.failure_text.c_str(), stderr);
      // The first violating run's scenario takes over the repro file: CI
      // uploads it as the repro artifact.
      if (!opts.repro_out.empty() && !wrote_violation_repro) {
        std::ofstream out(opts.repro_out);
        if (out) {
          Scenario scenario = generate(opts.seed + i);
          scenario.fault_profile = opts.fault_profile;
          scenario.standbys = opts.standbys;
          scenario.leader_churn = opts.leader_churn;
          scenario.bw = opts.bw;
          scenario.greedy = opts.greedy;
          scenario.rt = opts.rt;
          scenario.shards = opts.shards;
          scenario.legacy_rpc = opts.legacy_rpc;
          out << to_json(scenario);
          wrote_violation_repro = true;
          std::fprintf(stderr,
                       "violating scenario (seed %" PRIu64 ") written to %s\n",
                       opts.seed + i, opts.repro_out.c_str());
        }
      }
    }
    if (!opts.quiet && (i + 1) % 100 == 0) {
      std::printf("%" PRIu64 "/%" PRIu64 " runs, %" PRIu64 " violation(s)\n",
                  i + 1, opts.runs, violations);
    }
  }
  std::printf("escra-fuzz: %" PRIu64 " run(s), %" PRIu64
              " decision event(s) checked, %" PRIu64 " sweep(s), %" PRIu64
              " violation(s)\n",
              opts.runs, total_events, total_sweeps, violations);

  if (opts.greedy) {
    // Non-vacuity: a sweep where no telemetry was forged, or where the
    // forging never cost anybody a credit, proves nothing about the credit
    // invariants — fail loudly rather than report a hollow pass.
    std::printf("escra-fuzz: greedy overlay: %" PRIu64
                " forged/phantom event(s), %" PRIu64 " credit charge(s)\n",
                total_attacks, total_charges);
    if (total_attacks == 0 || total_charges == 0) {
      std::fprintf(stderr,
                   "escra-fuzz: VACUOUS GREEDY SWEEP (%" PRIu64
                   " attacks, %" PRIu64 " charges)\n",
                   total_attacks, total_charges);
      return 1;
    }
  }

  if (opts.rt) {
    // Non-vacuity: a sweep where admission control never admitted a single
    // reservation proves nothing about the never-reclaim floors or the
    // deadline guarantees — fail loudly rather than report a hollow pass.
    // Allocator-caused misses are checker violations (rt-allocator-miss),
    // so a clean sweep already implies zero of them; the misses printed
    // here are the tenant-caused remainder (overrun, RPC loss), which the
    // guarantee explicitly permits.
    std::printf("escra-fuzz: rt overlay: %" PRIu64 " admission(s), %" PRIu64
                " rejection(s), %" PRIu64 " deadline miss(es)\n",
                total_rt_admissions, total_rt_rejections, total_rt_misses);
    if (total_rt_admissions == 0) {
      std::fprintf(stderr, "escra-fuzz: VACUOUS RT SWEEP (0 reservations "
                           "admitted across all runs)\n");
      return 1;
    }
  }

  if (opts.shards > 0) {
    // Non-vacuity (N >= 2): a sweep where no shard ever ran dry enough to
    // borrow, or no lender ever granted, proves nothing about the borrow
    // protocol's conservation story — fail loudly rather than report a
    // hollow pass. (Scenarios draw at most 2 tenants, so with N >= 2 at
    // least one shard hosts no app and sits on a fully lendable slice
    // while the app-hosting shards start fully allocated.)
    std::printf("escra-fuzz: shard overlay: %d shard(s), %" PRIu64
                " cross-shard borrow grant(s)\n",
                opts.shards, total_grants);
    if (opts.shards >= 2 && total_grants == 0) {
      std::fprintf(stderr, "escra-fuzz: VACUOUS SHARD SWEEP (0 borrow "
                           "grants across all runs)\n");
      return 1;
    }
  }

  if (opts.rss_check) {
    // Flat-footprint guard: every run frees its Simulation (node pool,
    // batches, callbacks), so after a short allocator warmup the resident
    // set must stop growing. A leak in the engine's recycling shows up here
    // as monotonic growth across the sweep.
    const long rss_final_kib = current_rss_kib();
    constexpr long kSlackKib = 8 * 1024;
    std::printf("escra-fuzz: rss after warmup %ld KiB, after all runs %ld "
                "KiB (slack %ld KiB)\n",
                rss_baseline_kib, rss_final_kib, kSlackKib);
    if (rss_baseline_kib < 0 || rss_final_kib < 0) {
      std::fprintf(stderr, "error: could not read /proc/self/statm\n");
      return 2;
    }
    if (opts.runs <= kRssWarmupRuns) {
      std::fprintf(stderr, "error: --rss-check needs --runs > %" PRIu64 "\n",
                   kRssWarmupRuns);
      return 2;
    }
    if (rss_final_kib > rss_baseline_kib + kSlackKib) {
      std::fprintf(stderr,
                   "escra-fuzz: RSS GREW %ld KiB across the sweep (limit %ld)\n",
                   rss_final_kib - rss_baseline_kib, kSlackKib);
      return 1;
    }
  }
  return violations == 0 ? 0 : 1;
}
